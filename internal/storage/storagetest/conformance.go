// Package storagetest pins every storage.Backend implementation to the
// same observable semantics: Run is the conformance suite (condition
// evaluation and failure identities, upsert behavior, query/scan ordering
// and snapshot consistency, secondary-index ordering, TransactWrite
// atomicity, size caps, concurrent conditional safety, and commit-stream
// watch semantics — see watch.go), and Open is the
// backend-matrix seam — test harnesses build their stores through it, and
// the BELDI_BACKEND environment variable swaps the in-memory dynamo store
// for the durable walstore, turning every existing crash-sweep test into a
// restart-recovery test without touching the test itself.
package storagetest

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dynamo"
	"repro/internal/storage"
)

// Opener builds a fresh, empty backend for one subtest. Cleanup runs via
// tb.Cleanup inside the opener.
type Opener func(tb testing.TB) storage.Backend

// Run exercises the full conformance suite against backends built by open.
// Every subtest gets a fresh backend.
func Run(t *testing.T, open Opener) {
	sub := func(name string, f func(t *testing.T, b storage.Backend)) {
		t.Run(name, func(t *testing.T) { f(t, open(t)) })
	}
	sub("TableLifecycle", testTableLifecycle)
	sub("ConditionSemantics", testConditionSemantics)
	sub("UpdateUpsert", testUpdateUpsert)
	sub("DeleteSemantics", testDeleteSemantics)
	sub("QueryOrdering", testQueryOrdering)
	sub("IndexOrdering", testIndexOrdering)
	sub("ScanSnapshot", testScanSnapshot)
	sub("TransactWriteAtomicity", testTransactWriteAtomicity)
	sub("TransactConditionCheck", testTransactConditionCheck)
	sub("ItemSizeCap", testItemSizeCap)
	sub("ErrorIdentities", testErrorIdentities)
	sub("ConcurrentConditional", testConcurrentConditional)
	sub("WatchWakeOnCommit", testWatchWakeOnCommit)
	sub("WatchNoMissedCommit", testWatchNoMissedCommit)
	sub("WatchHashFilter", testWatchHashFilter)
	sub("WatchWaitSemantics", testWatchWaitSemantics)
	sub("WatchCloseSemantics", testWatchCloseSemantics)
	if simSection != nil {
		t.Run("SimInterleavings", func(t *testing.T) { simSection(t, open) })
	} else {
		t.Log("simulator conformance section inactive: blank-import repro/internal/sim to enable")
	}
}

// simSection is the simulator-backed conformance section: seeded
// adversarial interleavings and delay schedules over conditional writes and
// TransactWrite, with replay equality. It is registered by
// repro/internal/sim's init rather than imported — several packages'
// in-package tests import storagetest while the simulator imports those
// packages, so a direct import would cycle. Conformance callers
// blank-import the simulator to activate it.
var simSection func(t *testing.T, open Opener)

// RegisterSimSection installs the simulator-backed section Run executes.
func RegisterSimSection(fn func(t *testing.T, open Opener)) { simSection = fn }

func mustCreate(t *testing.T, b storage.Backend, s storage.Schema) {
	t.Helper()
	if err := b.CreateTable(s); err != nil {
		t.Fatalf("CreateTable %s: %v", s.Name, err)
	}
}

func put(t *testing.T, b storage.Backend, table string, it storage.Item) {
	t.Helper()
	if err := b.Put(table, it, nil); err != nil {
		t.Fatalf("Put %s %v: %v", table, it, err)
	}
}

// testTableLifecycle: creation, duplicate detection, deletion, and the
// unknown-table / unknown-index error identities.
func testTableLifecycle(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{Name: "a", HashKey: "K"})
	mustCreate(t, b, storage.Schema{Name: "z", HashKey: "K"})
	if err := b.CreateTable(storage.Schema{Name: "a", HashKey: "K"}); !errors.Is(err, storage.ErrTableExists) {
		t.Errorf("duplicate CreateTable: %v", err)
	}
	if names := b.TableNames(); len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Errorf("TableNames = %v", names)
	}
	if _, _, err := b.Get("nope", dynamo.HK(dynamo.S("x"))); !errors.Is(err, storage.ErrNoSuchTable) {
		t.Errorf("Get on missing table: %v", err)
	}
	if _, err := b.QueryIndex("a", "nope", dynamo.S("x"), storage.QueryOpts{}); !errors.Is(err, storage.ErrNoSuchIndex) {
		t.Errorf("QueryIndex on missing index: %v", err)
	}
	if err := b.DeleteTable("a"); err != nil {
		t.Fatalf("DeleteTable: %v", err)
	}
	if err := b.DeleteTable("a"); !errors.Is(err, storage.ErrNoSuchTable) {
		t.Errorf("double DeleteTable: %v", err)
	}
	if n, err := b.TableItemCount("z"); err != nil || n != 0 {
		t.Errorf("empty table count = %d (%v)", n, err)
	}
	if sh, err := b.TableShards("z"); err != nil || sh < 1 {
		t.Errorf("TableShards = %d (%v)", sh, err)
	}
	if _, err := b.TableSchema("nope"); !errors.Is(err, storage.ErrNoSuchTable) {
		t.Errorf("TableSchema on missing table: %v", err)
	}
	sch, err := b.TableSchema("z")
	if err != nil || sch.Name != "z" || sch.HashKey != "K" || sch.Shards < 1 {
		t.Errorf("TableSchema(z) = %+v (%v)", sch, err)
	}
}

// testConditionSemantics: conditions evaluate against the current row (or
// an empty item for absent rows), failures are ErrConditionFailed, state is
// untouched on failure, and the CondFailures metric counts them.
func testConditionSemantics(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K"})
	key := dynamo.HK(dynamo.S("a"))

	// Conditions against the absent row: attribute_not_exists passes,
	// equality fails.
	if err := b.Put("t", storage.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)},
		dynamo.NotExists(dynamo.A("K"))); err != nil {
		t.Fatalf("not-exists put on absent row: %v", err)
	}
	before := b.Metrics().Snapshot()
	err := b.Put("t", storage.Item{"K": dynamo.S("a"), "V": dynamo.NInt(2)},
		dynamo.NotExists(dynamo.A("K")))
	if !errors.Is(err, storage.ErrConditionFailed) {
		t.Fatalf("not-exists put on present row: %v", err)
	}
	if d := b.Metrics().Snapshot().Sub(before); d.CondFailures != 1 {
		t.Errorf("CondFailures delta = %d, want 1", d.CondFailures)
	}
	it, ok, err := b.Get("t", key)
	if err != nil || !ok || it["V"].Int() != 1 {
		t.Errorf("row after failed put = %v (ok=%v err=%v)", it, ok, err)
	}

	// Passing condition updates the row.
	if err := b.Put("t", storage.Item{"K": dynamo.S("a"), "V": dynamo.NInt(5)},
		dynamo.Eq(dynamo.A("V"), dynamo.NInt(1))); err != nil {
		t.Fatalf("eq put: %v", err)
	}
	// Failed Update leaves the row alone.
	err = b.Update("t", key, dynamo.Gt(dynamo.A("V"), dynamo.NInt(10)), dynamo.Add(dynamo.A("V"), 1))
	if !errors.Is(err, storage.ErrConditionFailed) {
		t.Fatalf("gt update: %v", err)
	}
	it, _, _ = b.Get("t", key)
	if it["V"].Int() != 5 {
		t.Errorf("V after failed update = %v, want 5", it["V"])
	}
}

// testUpdateUpsert: Update on a missing row materializes it with key
// attributes (when the condition passes against the absent row).
func testUpdateUpsert(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K", SortKey: "S"})
	key := dynamo.HSK(dynamo.S("h"), dynamo.NInt(3))
	if err := b.Update("t", key, nil, dynamo.Add(dynamo.A("N"), 2), dynamo.Set(dynamo.A("Tag"), dynamo.S("x"))); err != nil {
		t.Fatalf("upsert update: %v", err)
	}
	it, ok, err := b.Get("t", key)
	if err != nil || !ok {
		t.Fatalf("upserted row missing: %v %v", ok, err)
	}
	if it["K"].Str() != "h" || it["S"].Int() != 3 || it["N"].Int() != 2 || it["Tag"].Str() != "x" {
		t.Errorf("upserted row = %v", it)
	}
	// Map-path set, then remove.
	if err := b.Update("t", key, nil, dynamo.Set(dynamo.AK("M", "k1"), dynamo.NInt(9))); err != nil {
		t.Fatalf("map set: %v", err)
	}
	if err := b.Update("t", key, nil, dynamo.Remove(dynamo.A("Tag"))); err != nil {
		t.Fatalf("remove: %v", err)
	}
	it, _, _ = b.Get("t", key)
	if v, ok := it["M"].MapGet("k1"); !ok || v.Int() != 9 {
		t.Errorf("map entry = %v (ok=%v)", v, ok)
	}
	if _, exists := it["Tag"]; exists {
		t.Errorf("removed attribute survived: %v", it)
	}
}

// testDeleteSemantics: conditional delete, and deleting an absent row with
// a passing condition is a no-op.
func testDeleteSemantics(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K"})
	put(t, b, "t", storage.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)})
	if err := b.Delete("t", dynamo.HK(dynamo.S("missing")), nil); err != nil {
		t.Errorf("delete of absent row: %v", err)
	}
	err := b.Delete("t", dynamo.HK(dynamo.S("a")), dynamo.Eq(dynamo.A("V"), dynamo.NInt(2)))
	if !errors.Is(err, storage.ErrConditionFailed) {
		t.Errorf("conditional delete mismatch: %v", err)
	}
	if err := b.Delete("t", dynamo.HK(dynamo.S("a")), dynamo.Eq(dynamo.A("V"), dynamo.NInt(1))); err != nil {
		t.Errorf("conditional delete: %v", err)
	}
	if _, ok, _ := b.Get("t", dynamo.HK(dynamo.S("a"))); ok {
		t.Error("row survived delete")
	}
}

// testQueryOrdering: partition queries return sort-key order, honor
// Descending, Limit (applied after filtering), Filter, and Projection.
func testQueryOrdering(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K", SortKey: "S"})
	for _, s := range []int64{5, 1, 9, 3, 7} {
		put(t, b, "t", storage.Item{"K": dynamo.S("p"), "S": dynamo.NInt(s), "V": dynamo.NInt(s * 10), "Pad": dynamo.S("xx")})
	}
	put(t, b, "t", storage.Item{"K": dynamo.S("other"), "S": dynamo.NInt(2), "V": dynamo.NInt(0)})

	rows, err := b.Query("t", dynamo.S("p"), storage.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []int64{1, 3, 5, 7, 9}
	if len(rows) != len(wantOrder) {
		t.Fatalf("rows = %d, want %d", len(rows), len(wantOrder))
	}
	for i, w := range wantOrder {
		if rows[i]["S"].Int() != w {
			t.Fatalf("ascending order[%d] = %v, want %d", i, rows[i]["S"], w)
		}
	}
	rows, _ = b.Query("t", dynamo.S("p"), storage.QueryOpts{Descending: true, Limit: 2})
	if len(rows) != 2 || rows[0]["S"].Int() != 9 || rows[1]["S"].Int() != 7 {
		t.Errorf("descending limit 2: %v", rows)
	}
	rows, _ = b.Query("t", dynamo.S("p"), storage.QueryOpts{
		Filter:     dynamo.Gt(dynamo.A("V"), dynamo.NInt(30)),
		Projection: []storage.Path{dynamo.A("S")},
		Limit:      2,
	})
	if len(rows) != 2 || rows[0]["S"].Int() != 5 || rows[1]["S"].Int() != 7 {
		t.Errorf("filtered projected query: %v", rows)
	}
	for _, r := range rows {
		if _, has := r["Pad"]; has {
			t.Errorf("projection leaked attributes: %v", r)
		}
	}
}

// testIndexOrdering: secondary-index queries order by the index sort
// attribute; rows missing the index hash attribute stay out of the index.
func testIndexOrdering(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{
		Name: "t", HashKey: "K",
		Indexes: []storage.IndexSchema{{Name: "by-g", HashKey: "G", SortKey: "R"}},
	})
	put(t, b, "t", storage.Item{"K": dynamo.S("a"), "G": dynamo.S("g1"), "R": dynamo.NInt(3)})
	put(t, b, "t", storage.Item{"K": dynamo.S("b"), "G": dynamo.S("g1"), "R": dynamo.NInt(1)})
	put(t, b, "t", storage.Item{"K": dynamo.S("c"), "G": dynamo.S("g2"), "R": dynamo.NInt(2)})
	put(t, b, "t", storage.Item{"K": dynamo.S("d")}) // sparse: no G

	rows, err := b.QueryIndex("t", "by-g", dynamo.S("g1"), storage.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0]["K"].Str() != "b" || rows[1]["K"].Str() != "a" {
		t.Errorf("index query: %v", rows)
	}
	if rows, _ := b.QueryIndex("t", "by-g", dynamo.S("gX"), storage.QueryOpts{}); len(rows) != 0 {
		t.Errorf("index query on empty group: %v", rows)
	}
}

// testScanSnapshot: Scan returns every row in deterministic order, and a
// scan racing writers never observes a torn multi-row transaction.
func testScanSnapshot(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K"})
	const rows = 10
	for i := 0; i < rows; i++ {
		put(t, b, "t", storage.Item{"K": dynamo.S(fmt.Sprintf("k%02d", i)), "V": dynamo.NInt(0)})
	}
	got, err := b.Scan("t", storage.QueryOpts{})
	if err != nil || len(got) != rows {
		t.Fatalf("scan = %d rows (%v)", len(got), err)
	}
	again, _ := b.Scan("t", storage.QueryOpts{})
	for i := range got {
		if got[i]["K"].Str() != again[i]["K"].Str() {
			t.Fatalf("scan order not deterministic at %d: %v vs %v", i, got[i], again[i])
		}
	}

	// Writers bump pairs (k00,k01) atomically; every scan must see the pair
	// equal — the consistent-snapshot property Beldi needs (§4.1).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := b.TransactWrite([]storage.TxOp{
				{Table: "t", Key: dynamo.HK(dynamo.S("k00")), Updates: []storage.Update{dynamo.Set(dynamo.A("V"), dynamo.NInt(int64(i)))}},
				{Table: "t", Key: dynamo.HK(dynamo.S("k01")), Updates: []storage.Update{dynamo.Set(dynamo.A("V"), dynamo.NInt(int64(i)))}},
			})
			if err != nil {
				t.Errorf("txn writer: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 25; i++ {
		snap, err := b.Scan("t", storage.QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		var v0, v1 int64 = -1, -1
		for _, r := range snap {
			switch r["K"].Str() {
			case "k00":
				v0 = r["V"].Int()
			case "k01":
				v1 = r["V"].Int()
			}
		}
		if v0 != v1 {
			t.Fatalf("scan observed torn transaction: k00=%d k01=%d", v0, v1)
		}
	}
	close(stop)
	wg.Wait()
}

// testTransactWriteAtomicity: all-or-nothing application, per-op reasons on
// cancellation, errors.Is(ErrConditionFailed), and duplicate-target
// rejection.
func testTransactWriteAtomicity(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{Name: "x", HashKey: "K"})
	mustCreate(t, b, storage.Schema{Name: "y", HashKey: "K"})
	put(t, b, "x", storage.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)})

	// One failing condition cancels every op.
	err := b.TransactWrite([]storage.TxOp{
		{Table: "x", Key: dynamo.HK(dynamo.S("a")), Updates: []storage.Update{dynamo.Add(dynamo.A("V"), 10)}},
		{Table: "y", Cond: dynamo.Exists(dynamo.A("K")), Key: dynamo.HK(dynamo.S("b")),
			Updates: []storage.Update{dynamo.Add(dynamo.A("V"), 1)}},
	})
	if !errors.Is(err, storage.ErrConditionFailed) {
		t.Fatalf("canceled txn: %v", err)
	}
	var tce *storage.TxCanceledError
	if !errors.As(err, &tce) {
		t.Fatalf("not a TxCanceledError: %T", err)
	}
	if len(tce.Reasons) != 2 || tce.Reasons[0] != nil || tce.Reasons[1] == nil {
		t.Errorf("reasons = %v", tce.Reasons)
	}
	if it, _, _ := b.Get("x", dynamo.HK(dynamo.S("a"))); it["V"].Int() != 1 {
		t.Errorf("canceled txn mutated x/a: %v", it)
	}
	if _, ok, _ := b.Get("y", dynamo.HK(dynamo.S("b"))); ok {
		t.Error("canceled txn created y/b")
	}

	// A passing transaction applies across tables: put + update + delete.
	put(t, b, "y", storage.Item{"K": dynamo.S("gone")})
	if err := b.TransactWrite([]storage.TxOp{
		{Table: "x", Put: storage.Item{"K": dynamo.S("new"), "V": dynamo.NInt(7)}},
		{Table: "x", Key: dynamo.HK(dynamo.S("a")), Cond: dynamo.Eq(dynamo.A("V"), dynamo.NInt(1)),
			Updates: []storage.Update{dynamo.Add(dynamo.A("V"), 100)}},
		{Table: "y", Key: dynamo.HK(dynamo.S("gone")), Delete: true},
	}); err != nil {
		t.Fatalf("txn: %v", err)
	}
	if it, _, _ := b.Get("x", dynamo.HK(dynamo.S("new"))); it["V"].Int() != 7 {
		t.Errorf("txn put missing: %v", it)
	}
	if it, _, _ := b.Get("x", dynamo.HK(dynamo.S("a"))); it["V"].Int() != 101 {
		t.Errorf("txn update: %v", it)
	}
	if _, ok, _ := b.Get("y", dynamo.HK(dynamo.S("gone"))); ok {
		t.Error("txn delete did not apply")
	}

	// Duplicate targets are rejected.
	err = b.TransactWrite([]storage.TxOp{
		{Table: "x", Key: dynamo.HK(dynamo.S("a")), Updates: []storage.Update{dynamo.Add(dynamo.A("V"), 1)}},
		{Table: "x", Key: dynamo.HK(dynamo.S("a")), Updates: []storage.Update{dynamo.Add(dynamo.A("V"), 1)}},
	})
	if err == nil {
		t.Error("duplicate-target txn accepted")
	}
}

// testTransactConditionCheck: a Check op asserts its condition atomically
// with the transaction's writes and never mutates its own row — DynamoDB's
// ConditionCheck, the fencing primitive the cluster runtime claims intents
// with.
func testTransactConditionCheck(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{Name: "auth", HashKey: "K"})
	mustCreate(t, b, storage.Schema{Name: "work", HashKey: "K"})
	put(t, b, "auth", storage.Item{"K": dynamo.S("p0"), "Owner": dynamo.S("w1"), "Epoch": dynamo.NInt(3)})
	put(t, b, "work", storage.Item{"K": dynamo.S("job"), "Claimed": dynamo.Bool(false)})

	fence := func(owner string, epoch int64) storage.TxOp {
		return storage.TxOp{
			Table: "auth", Key: dynamo.HK(dynamo.S("p0")),
			Cond: dynamo.And(
				dynamo.Eq(dynamo.A("Owner"), dynamo.S(owner)),
				dynamo.Eq(dynamo.A("Epoch"), dynamo.NInt(epoch)),
			),
			Check: true,
		}
	}
	claim := storage.TxOp{
		Table: "work", Key: dynamo.HK(dynamo.S("job")),
		Cond:    dynamo.Eq(dynamo.A("Claimed"), dynamo.Bool(false)),
		Updates: []storage.Update{dynamo.Set(dynamo.A("Claimed"), dynamo.Bool(true))},
	}

	// A stale fence rejects the whole transaction and mutates nothing.
	err := b.TransactWrite([]storage.TxOp{fence("w1", 2), claim})
	if !errors.Is(err, storage.ErrConditionFailed) {
		t.Fatalf("stale fence: %v", err)
	}
	var tce *storage.TxCanceledError
	if !errors.As(err, &tce) || len(tce.Reasons) != 2 || tce.Reasons[0] == nil || tce.Reasons[1] != nil {
		t.Fatalf("stale fence reasons = %+v", err)
	}
	if it, _, _ := b.Get("work", dynamo.HK(dynamo.S("job"))); it["Claimed"].BoolVal() {
		t.Error("fenced transaction claimed the work anyway")
	}

	// A current fence lets the claim through and leaves the checked row
	// byte-identical.
	authBefore, _, _ := b.Get("auth", dynamo.HK(dynamo.S("p0")))
	if err := b.TransactWrite([]storage.TxOp{fence("w1", 3), claim}); err != nil {
		t.Fatalf("valid fence: %v", err)
	}
	if it, _, _ := b.Get("work", dynamo.HK(dynamo.S("job"))); !it["Claimed"].BoolVal() {
		t.Error("fenced claim did not apply")
	}
	authAfter, _, _ := b.Get("auth", dynamo.HK(dynamo.S("p0")))
	if len(authAfter) != len(authBefore) {
		t.Errorf("Check mutated its row: %v → %v", authBefore, authAfter)
	}
	for k, v := range authBefore {
		if !v.Equal(authAfter[k]) {
			t.Errorf("Check mutated attribute %s: %v → %v", k, v, authAfter[k])
		}
	}

	// A Check against an absent row evaluates like any condition (against
	// the empty item) and must not create the row.
	if err := b.TransactWrite([]storage.TxOp{
		{Table: "auth", Key: dynamo.HK(dynamo.S("ghost")),
			Cond: dynamo.NotExists(dynamo.A("K")), Check: true},
		{Table: "work", Put: storage.Item{"K": dynamo.S("job2")}},
	}); err != nil {
		t.Fatalf("absent-row check: %v", err)
	}
	if _, ok, _ := b.Get("auth", dynamo.HK(dynamo.S("ghost"))); ok {
		t.Error("Check materialized an absent row")
	}
}

// testItemSizeCap: rows past MaxItemSize are rejected with ErrItemTooLarge
// and the row stays unchanged.
func testItemSizeCap(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K", MaxItemSize: 64})
	big := make([]byte, 128)
	err := b.Put("t", storage.Item{"K": dynamo.S("a"), "B": dynamo.Bytes(big)}, nil)
	if !errors.Is(err, storage.ErrItemTooLarge) {
		t.Fatalf("oversized put: %v", err)
	}
	put(t, b, "t", storage.Item{"K": dynamo.S("a"), "B": dynamo.Bytes(big[:8])})
	err = b.Update("t", dynamo.HK(dynamo.S("a")), nil, dynamo.Set(dynamo.A("B"), dynamo.Bytes(big)))
	if !errors.Is(err, storage.ErrItemTooLarge) {
		t.Fatalf("oversized update: %v", err)
	}
	it, _, _ := b.Get("t", dynamo.HK(dynamo.S("a")))
	if len(it["B"].BytesVal()) != 8 {
		t.Errorf("row changed by rejected update: %v", it)
	}
}

// testErrorIdentities: every backend returns error *values* that satisfy
// errors.Is against the shared storage sentinels (and errors.As for
// TxCanceledError) — not merely errors with similar messages. This pins
// backends that cross a serialization boundary (the remote client, journal
// replayers) to exact identity mapping, because callers above the seam
// branch on these identities for fencing and exactly-once decisions.
func testErrorIdentities(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K", MaxItemSize: 64})
	put(t, b, "t", storage.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)})

	check := func(what string, err, sentinel error) {
		t.Helper()
		if !errors.Is(err, sentinel) {
			t.Errorf("%s: got %v (%T), want errors.Is(err, %v)", what, err, err, sentinel)
		}
	}
	check("duplicate CreateTable",
		b.CreateTable(storage.Schema{Name: "t", HashKey: "K"}), storage.ErrTableExists)
	check("DeleteTable on missing table",
		b.DeleteTable("nope"), storage.ErrNoSuchTable)
	_, _, getErr := b.Get("nope", dynamo.HK(dynamo.S("x")))
	check("Get on missing table", getErr, storage.ErrNoSuchTable)
	_, qiErr := b.QueryIndex("t", "nope", dynamo.S("x"), storage.QueryOpts{})
	check("QueryIndex on missing index", qiErr, storage.ErrNoSuchIndex)
	check("conditional Put mismatch",
		b.Put("t", storage.Item{"K": dynamo.S("a")}, dynamo.NotExists(dynamo.A("K"))),
		storage.ErrConditionFailed)
	check("conditional Update mismatch",
		b.Update("t", dynamo.HK(dynamo.S("a")), dynamo.Eq(dynamo.A("V"), dynamo.NInt(9)),
			dynamo.Add(dynamo.A("V"), 1)),
		storage.ErrConditionFailed)
	check("conditional Delete mismatch",
		b.Delete("t", dynamo.HK(dynamo.S("a")), dynamo.Eq(dynamo.A("V"), dynamo.NInt(9))),
		storage.ErrConditionFailed)
	check("oversized Put",
		b.Put("t", storage.Item{"K": dynamo.S("big"), "B": dynamo.Bytes(make([]byte, 128))}, nil),
		storage.ErrItemTooLarge)

	// A canceled transaction is all three at once: errors.Is-able as a
	// condition failure, errors.As-able to TxCanceledError, and carries
	// positional reasons that are themselves Is-able.
	txErr := b.TransactWrite([]storage.TxOp{
		{Table: "t", Key: dynamo.HK(dynamo.S("other")), Updates: []storage.Update{dynamo.Add(dynamo.A("V"), 1)}},
		{Table: "t", Key: dynamo.HK(dynamo.S("a")), Cond: dynamo.NotExists(dynamo.A("K")), Check: true},
	})
	check("canceled TransactWrite", txErr, storage.ErrConditionFailed)
	var tce *storage.TxCanceledError
	if !errors.As(txErr, &tce) {
		t.Fatalf("canceled TransactWrite: got %T, want errors.As TxCanceledError", txErr)
	}
	if len(tce.Reasons) != 2 || tce.Reasons[0] != nil || !errors.Is(tce.Reasons[1], storage.ErrConditionFailed) {
		t.Errorf("canceled TransactWrite reasons = %v, want [nil, ErrConditionFailed]", tce.Reasons)
	}
}

// testConcurrentConditional: racing conditional claims on one row admit
// exactly one winner per round — the store-level mutual exclusion Beldi's
// intent registration and lock protocol are built on.
func testConcurrentConditional(t *testing.T, b storage.Backend) {
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K"})
	const rounds, contenders = 20, 8
	for r := 0; r < rounds; r++ {
		key := fmt.Sprintf("k%02d", r)
		var wg sync.WaitGroup
		wins := make(chan int, contenders)
		for c := 0; c < contenders; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				err := b.Put("t", storage.Item{"K": dynamo.S(key), "Owner": dynamo.NInt(int64(c))},
					dynamo.NotExists(dynamo.A("K")))
				if err == nil {
					wins <- c
				} else if !errors.Is(err, storage.ErrConditionFailed) {
					t.Errorf("claim: %v", err)
				}
			}(c)
		}
		wg.Wait()
		close(wins)
		var winners []int
		for w := range wins {
			winners = append(winners, w)
		}
		if len(winners) != 1 {
			t.Fatalf("round %d: %d winners", r, len(winners))
		}
		it, ok, _ := b.Get("t", dynamo.HK(dynamo.S(key)))
		if !ok || it["Owner"].Int() != int64(winners[0]) {
			t.Fatalf("round %d: row %v, winner %d", r, it, winners[0])
		}
	}
}
