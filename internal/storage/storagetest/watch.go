package storagetest

import (
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/storage"
)

// Watch conformance: every backend that implements storage.Watcher must
// expose the same commit-stream semantics — a wakeup per committed write
// with strictly increasing per-table Seq, synchronous registration (no
// commit between Watch returning and the first event is ever missed),
// hash-key filtering, timer-bounded Wait that degrades (never spins) on a
// closed subscription, and idempotent Close that closes the Events channel.
// Backends without push support skip the section; their consumers fall back
// to polling through the storage.Watch capability probe.

// watchTimeout bounds waits for events that MUST arrive. It is generous
// because the remote backend delivers over a real connection.
const watchTimeout = 5 * time.Second

// watchQuiet bounds waits for events that must NOT arrive. Absence can only
// be observed for a bounded time; a backend that wrongly delivers here is
// caught (possibly flakily fast, never flakily slow).
const watchQuiet = 100 * time.Millisecond

// requireWatcher skips the subtest when b has no push support.
func requireWatcher(t *testing.T, b storage.Backend) storage.Watcher {
	t.Helper()
	w, ok := b.(storage.Watcher)
	if !ok {
		t.Skip("backend is not a storage.Watcher; consumers poll instead")
	}
	return w
}

func mustWatch(t *testing.T, b storage.Backend, table string, hash dynamo.Value) storage.Subscription {
	t.Helper()
	sub, err := requireWatcher(t, b).Watch(table, hash)
	if err != nil {
		t.Fatalf("Watch(%s, %v): %v", table, hash, err)
	}
	return sub
}

// recvEvent receives one event from sub within timeout.
func recvEvent(t *testing.T, sub storage.Subscription, timeout time.Duration) (storage.CommitEvent, bool) {
	t.Helper()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case ev, ok := <-sub.Events():
		return ev, ok
	case <-timer.C:
		return storage.CommitEvent{}, false
	}
}

// testWatchWakeOnCommit: every mutating operation — Put, Update, Delete,
// and each write of a TransactWrite — produces a wakeup carrying the table,
// the row's hash-key value, and a strictly increasing Seq, delivered in
// commit order.
func testWatchWakeOnCommit(t *testing.T, b storage.Backend) {
	requireWatcher(t, b)
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K"})
	sub := mustWatch(t, b, "t", dynamo.Null)
	defer sub.Close()

	put(t, b, "t", storage.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)})
	if err := b.Update("t", dynamo.HK(dynamo.S("a")), nil, dynamo.Add(dynamo.A("V"), 1)); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := b.Delete("t", dynamo.HK(dynamo.S("a")), nil); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := b.TransactWrite([]storage.TxOp{
		{Table: "t", Put: storage.Item{"K": dynamo.S("b"), "V": dynamo.NInt(7)}},
	}); err != nil {
		t.Fatalf("TransactWrite: %v", err)
	}

	wantHash := []string{"a", "a", "a", "b"}
	var last uint64
	for i, want := range wantHash {
		ev, ok := recvEvent(t, sub, watchTimeout)
		if !ok {
			t.Fatalf("commit %d produced no wakeup (got %d of %d)", i, i, len(wantHash))
		}
		if ev.Table != "t" {
			t.Errorf("event %d table = %q, want t", i, ev.Table)
		}
		if ev.Hash.Str() != want {
			t.Errorf("event %d hash = %v, want %s", i, ev.Hash, want)
		}
		if ev.Seq <= last {
			t.Fatalf("event %d Seq = %d after %d: per-table Seq must be strictly increasing", i, ev.Seq, last)
		}
		last = ev.Seq
	}
}

// testWatchNoMissedCommit: registration is synchronous. A commit strictly
// before Watch is never delivered; the first commit after Watch returns
// always is — exercised across repeated subscribe-then-immediately-commit
// rounds to catch registration races.
func testWatchNoMissedCommit(t *testing.T, b storage.Backend) {
	requireWatcher(t, b)
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K"})
	put(t, b, "t", storage.Item{"K": dynamo.S("before"), "V": dynamo.NInt(0)})

	for round := 0; round < 10; round++ {
		sub := mustWatch(t, b, "t", dynamo.Null)
		key := dynamo.S("r" + string(rune('0'+round)))
		put(t, b, "t", storage.Item{"K": key, "V": dynamo.NInt(int64(round))})
		ev, ok := recvEvent(t, sub, watchTimeout)
		if !ok {
			t.Fatalf("round %d: commit immediately after Watch returned was missed", round)
		}
		if ev.Hash.Str() != key.Str() {
			t.Fatalf("round %d: first event is for %v, want %v — a pre-subscribe commit leaked in", round, ev.Hash, key)
		}
		sub.Close()
	}

	// A fresh subscription sees nothing from the table's history.
	sub := mustWatch(t, b, "t", dynamo.Null)
	defer sub.Close()
	if ev, ok := recvEvent(t, sub, watchQuiet); ok {
		t.Errorf("pre-subscribe commit delivered: %+v", ev)
	}
}

// testWatchHashFilter: a hash-scoped subscription wakes only for its
// partition; a Null-hash subscription wakes for every commit; both observe
// strictly increasing Seq.
func testWatchHashFilter(t *testing.T, b storage.Backend) {
	requireWatcher(t, b)
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K"})
	narrow := mustWatch(t, b, "t", dynamo.S("hot"))
	defer narrow.Close()
	wide := mustWatch(t, b, "t", dynamo.Null)
	defer wide.Close()

	writes := []string{"cold1", "hot", "cold2", "hot"}
	for i, k := range writes {
		put(t, b, "t", storage.Item{"K": dynamo.S(k), "V": dynamo.NInt(int64(i))})
	}

	// The wide subscription fans out every commit, in order.
	var last uint64
	for i, want := range writes {
		ev, ok := recvEvent(t, wide, watchTimeout)
		if !ok {
			t.Fatalf("wide subscription got %d of %d events", i, len(writes))
		}
		if ev.Hash.Str() != want {
			t.Errorf("wide event %d hash = %v, want %s", i, ev.Hash, want)
		}
		if ev.Seq <= last {
			t.Fatalf("wide event %d Seq = %d after %d", i, ev.Seq, last)
		}
		last = ev.Seq
	}

	// The narrow subscription sees exactly the two hot commits.
	last = 0
	for i := 0; i < 2; i++ {
		ev, ok := recvEvent(t, narrow, watchTimeout)
		if !ok {
			t.Fatalf("narrow subscription got %d of 2 hot events", i)
		}
		if ev.Hash.Str() != "hot" {
			t.Fatalf("narrow subscription woke for %v: hash filter leaked", ev.Hash)
		}
		if ev.Seq <= last {
			t.Fatalf("narrow event %d Seq = %d after %d", i, ev.Seq, last)
		}
		last = ev.Seq
	}
	if ev, ok := recvEvent(t, narrow, watchQuiet); ok {
		t.Errorf("narrow subscription delivered an extra event: %+v", ev)
	}
}

// testWatchWaitSemantics: Wait consumes a pending or arriving event (true),
// times out empty (false), aborts on cancel (false), and on a closed
// subscription waits out the full duration like a backend without push —
// the retry loops built on Wait keep their poll cadence instead of
// spinning.
func testWatchWaitSemantics(t *testing.T, b storage.Backend) {
	requireWatcher(t, b)
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K"})
	sub := mustWatch(t, b, "t", dynamo.Null)
	defer sub.Close()

	put(t, b, "t", storage.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)})
	if !sub.Wait(watchTimeout, nil) {
		t.Fatal("Wait missed a committed write")
	}
	if sub.Wait(watchQuiet, nil) {
		t.Fatal("Wait claimed an event on a drained stream")
	}

	// A fired cancel aborts a long Wait promptly.
	canceled := make(chan struct{})
	close(canceled)
	start := time.Now()
	if sub.Wait(watchTimeout, canceled) {
		t.Error("canceled Wait claimed an event")
	}
	if el := time.Since(start); el > watchTimeout/2 {
		t.Errorf("canceled Wait returned after %v, want prompt abort", el)
	}

	// Closed subscription: false after the FULL duration — degrade, never
	// spin, never return early.
	sub.Close()
	const d = 80 * time.Millisecond
	start = time.Now()
	if sub.Wait(d, nil) {
		t.Error("Wait on a closed subscription claimed an event")
	}
	if el := time.Since(start); el < d/2 {
		t.Errorf("Wait on a closed subscription returned after %v, want ~%v: a degraded waiter keeps the poll cadence", el, d)
	}
}

// testWatchCloseSemantics: Close closes the Events channel (after any
// pending events drain), is idempotent, later commits deliver nothing, and
// watching an unknown table fails — with storage.Watch turning both the
// failure and a push-less backend into a clean poll fallback.
func testWatchCloseSemantics(t *testing.T, b storage.Backend) {
	w := requireWatcher(t, b)
	mustCreate(t, b, storage.Schema{Name: "t", HashKey: "K"})
	sub := mustWatch(t, b, "t", dynamo.Null)
	put(t, b, "t", storage.Item{"K": dynamo.S("a"), "V": dynamo.NInt(1)})
	sub.Close()

	// Drain anything already buffered; the channel must then report closed.
	deadline := time.NewTimer(watchTimeout)
	defer deadline.Stop()
	for {
		select {
		case _, ok := <-sub.Events():
			if !ok {
				goto closed
			}
		case <-deadline.C:
			t.Fatal("Events channel never closed after Close")
		}
	}
closed:
	sub.Close() // idempotent

	// Commits after Close are invisible to the dead subscription and must
	// not disturb the backend.
	put(t, b, "t", storage.Item{"K": dynamo.S("b"), "V": dynamo.NInt(2)})
	if _, ok := <-sub.Events(); ok {
		t.Error("closed subscription delivered an event")
	}

	// Unknown tables are a Watch error, and the capability probe reports
	// no-push rather than surfacing it (pollers handle real errors).
	if _, err := w.Watch("nope", dynamo.Null); err == nil {
		t.Error("Watch on an unknown table succeeded")
	}
	if _, ok := storage.Watch(b, "nope", dynamo.Null); ok {
		t.Error("storage.Watch reported push support for an unknown table")
	}
	if _, ok := storage.Watch(b, "t", dynamo.Null); !ok {
		t.Error("storage.Watch reported no push support on a Watcher backend")
	}
}
