package storagetest

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/dynamo"
	"repro/internal/storage"
	"repro/internal/walstore"
)

// BackendEnv is the environment variable selecting the test-matrix backend.
const BackendEnv = "BELDI_BACKEND"

// Backend names registered by this package. Other packages may register
// more with RegisterBackend.
const (
	BackendMemory = "memory"
	BackendWAL    = "wal"
	BackendRemote = "remote"
)

// Factory builds a fresh, empty backend for one test, cleaned up with the
// test (via tb.Cleanup).
type Factory func(tb testing.TB) storage.Backend

var (
	regMu    sync.Mutex
	registry = map[string]Factory{
		BackendMemory: OpenMemory,
		BackendWAL:    OpenWAL,
	}
)

// RegisterBackend adds a named backend to the BELDI_BACKEND matrix, so new
// backends (remote clients, instrumented wrappers) plug into every harness
// built on Open without touching the harnesses. Registering an existing
// name replaces its factory.
func RegisterBackend(name string, f Factory) {
	if name == "" || f == nil {
		panic("storagetest: RegisterBackend with empty name or nil factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = f
}

// Backends lists the registered backend names in sorted order.
func Backends() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BackendName reports the backend the matrix selected ("memory" when
// BELDI_BACKEND is unset). It panics on a name nothing registered — a
// misspelled matrix cell should fail loudly, not silently test the default.
func BackendName() string {
	v := os.Getenv(BackendEnv)
	if v == "" {
		return BackendMemory
	}
	regMu.Lock()
	_, ok := registry[v]
	regMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("storagetest: unknown %s=%q (registered: %s)",
			BackendEnv, v, strings.Join(Backends(), ", ")))
	}
	return v
}

// Open builds a fresh backend of the kind BELDI_BACKEND selects, cleaned up
// with the test. With "wal" the store lives in a test temp directory, fsyncs
// for real (group-committed), and is closed — then audited with Fsck — when
// the test ends, so every test in the matrix also checks that the log it
// wrote recovers cleanly. With "remote" the backend additionally sits
// behind an in-test storaged server, so every test also crosses the wire
// protocol.
func Open(tb testing.TB) storage.Backend {
	tb.Helper()
	name := BackendName()
	regMu.Lock()
	f := registry[name]
	regMu.Unlock()
	return f(tb)
}

// OpenMemory builds the in-memory dynamo backend.
func OpenMemory(tb testing.TB) storage.Backend {
	tb.Helper()
	return dynamo.NewStore()
}

// OpenWAL builds a durable walstore backend in a fresh temp directory,
// closing and Fsck-auditing it at test cleanup.
func OpenWAL(tb testing.TB) storage.Backend {
	tb.Helper()
	dir := tb.TempDir()
	s, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		tb.Fatalf("storagetest: open walstore: %v", err)
	}
	tb.Cleanup(func() {
		if err := s.Close(); err != nil {
			tb.Errorf("storagetest: close walstore: %v", err)
		}
		if err := walstore.Fsck(dir); err != nil {
			tb.Errorf("storagetest: walstore fsck: %v", err)
		}
	})
	return s
}
