package storagetest

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/dynamo"
	"repro/internal/storage"
	"repro/internal/walstore"
)

// BackendEnv is the environment variable selecting the test-matrix backend.
const BackendEnv = "BELDI_BACKEND"

// Backend names accepted in BELDI_BACKEND.
const (
	BackendMemory = "memory"
	BackendWAL    = "wal"
)

// BackendName reports the backend the matrix selected: "memory" (default)
// or "wal".
func BackendName() string {
	switch v := os.Getenv(BackendEnv); v {
	case "", BackendMemory:
		return BackendMemory
	case BackendWAL:
		return BackendWAL
	default:
		panic(fmt.Sprintf("storagetest: unknown %s=%q (want %q or %q)", BackendEnv, v, BackendMemory, BackendWAL))
	}
}

// Open builds a fresh backend of the kind BELDI_BACKEND selects, cleaned up
// with the test. With "wal" the store lives in a test temp directory, fsyncs
// for real (group-committed), and is closed — then audited with Fsck — when
// the test ends, so every test in the matrix also checks that the log it
// wrote recovers cleanly.
func Open(tb testing.TB) storage.Backend {
	tb.Helper()
	switch BackendName() {
	case BackendWAL:
		return OpenWAL(tb)
	default:
		return OpenMemory(tb)
	}
}

// OpenMemory builds the in-memory dynamo backend.
func OpenMemory(tb testing.TB) storage.Backend {
	tb.Helper()
	return dynamo.NewStore()
}

// OpenWAL builds a durable walstore backend in a fresh temp directory,
// closing and Fsck-auditing it at test cleanup.
func OpenWAL(tb testing.TB) storage.Backend {
	tb.Helper()
	dir := tb.TempDir()
	s, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		tb.Fatalf("storagetest: open walstore: %v", err)
	}
	tb.Cleanup(func() {
		if err := s.Close(); err != nil {
			tb.Errorf("storagetest: close walstore: %v", err)
		}
		if err := walstore.Fsck(dir); err != nil {
			tb.Errorf("storagetest: walstore fsck: %v", err)
		}
	})
	return s
}
