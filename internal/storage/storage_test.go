package storage_test

import (
	"testing"

	"repro/internal/dynamo"
	"repro/internal/storage"
	"repro/internal/walstore"
)

// Both concrete stores satisfy the seam, and AsDynamo unwraps each down to
// the in-memory store carrying the shard/batching knobs.
func TestAsDynamo(t *testing.T) {
	mem := dynamo.NewStore()
	if got, ok := storage.AsDynamo(mem); !ok || got != mem {
		t.Errorf("AsDynamo(mem) = %v, %v", got, ok)
	}
	wal, err := walstore.Open(t.TempDir(), walstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	if got, ok := storage.AsDynamo(wal); !ok || got != wal.DynamoStore() {
		t.Errorf("AsDynamo(wal) = %v, %v", got, ok)
	}
	var b storage.Backend = wal
	if _, ok := b.(*dynamo.Store); ok {
		t.Error("walstore must not be a *dynamo.Store")
	}
}

func TestMustCreateTable(t *testing.T) {
	mem := dynamo.NewStore()
	storage.MustCreateTable(mem, storage.Schema{Name: "t", HashKey: "K"})
	defer func() {
		if recover() == nil {
			t.Error("duplicate MustCreateTable did not panic")
		}
	}()
	storage.MustCreateTable(mem, storage.Schema{Name: "t", HashKey: "K"})
}
