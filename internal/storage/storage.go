// Package storage defines the seam between Beldi's protocol layers and the
// database that makes them durable: Backend is the slice of DynamoDB's API
// that the core actually consumes (strongly consistent reads, atomic
// conditional single-row writes, query/scan with filtering and projection,
// secondary-index queries, and multi-row conditional transactions).
//
// Everything above this package — core, queue, platform glue, the beldi
// facade, the bench harness — holds a Backend, never a concrete store, so
// backends are pluggable:
//
//   - internal/dynamo is the in-memory implementation (lock-striped shards,
//     group-commit batching, injectable latency model) that every simulation
//     figure runs on;
//   - internal/walstore wraps it with a segmented, CRC-checked write-ahead
//     log plus snapshots, so the same protocol state survives the process
//     and Open(dir) recovers it.
//
// The data model (Value, Item, Key, Cond, Update, Schema, …) is shared by
// all backends and lives in internal/dynamo; this package re-exports it
// under storage names so consumers can depend on the seam alone. The
// conformance suite in storage/storagetest pins every backend to identical
// observable semantics, condition failures and error identities included.
package storage

import "repro/internal/dynamo"

// Shared data-model types, aliased from the dynamo package (the reference
// implementation of the model). The aliases are identities: values flow
// between packages using either name.
type (
	// Value is a dynamically typed attribute value.
	Value = dynamo.Value
	// Item is a row: named attributes.
	Item = dynamo.Item
	// Key identifies a row by hash (and optional sort) attribute value.
	Key = dynamo.Key
	// Cond guards conditional operations.
	Cond = dynamo.Cond
	// Update is one action of an update expression.
	Update = dynamo.Update
	// Schema describes a table.
	Schema = dynamo.Schema
	// IndexSchema describes a secondary index.
	IndexSchema = dynamo.IndexSchema
	// QueryOpts shape a Query, QueryIndex or Scan.
	QueryOpts = dynamo.QueryOpts
	// Path addresses an attribute (optionally one level into a map).
	Path = dynamo.Path
	// TxOp is one write inside a TransactWrite.
	TxOp = dynamo.TxOp
	// Metrics counts a backend's traffic (the metrics hook every backend
	// exposes; walstore adds WAL-specific counters on the side).
	Metrics = dynamo.Metrics
	// TxCanceledError reports a canceled TransactWrite with per-op reasons.
	TxCanceledError = dynamo.TxCanceledError
)

// Error identities shared by every backend; test with errors.Is. They alias
// the dynamo package's errors so existing errors.Is checks keep working
// regardless of which name produced them.
var (
	// ErrConditionFailed reports a conditional operation whose condition
	// evaluated false.
	ErrConditionFailed = dynamo.ErrConditionFailed
	// ErrItemTooLarge reports an operation that would exceed the table's
	// item size cap.
	ErrItemTooLarge = dynamo.ErrItemTooLarge
	// ErrNoSuchTable reports an operation against an unknown table.
	ErrNoSuchTable = dynamo.ErrNoSuchTable
	// ErrTableExists reports CreateTable on an existing name.
	ErrTableExists = dynamo.ErrTableExists
	// ErrNoSuchIndex reports a query against an unknown secondary index.
	ErrNoSuchIndex = dynamo.ErrNoSuchIndex
)

// Backend is the store API Beldi's protocol layers consume. Implementations
// must be safe for concurrent use; every operation is linearizable, and
// conditional updates are atomic within a row — the atomicity scope the
// paper assumes of DynamoDB (§2.2). Whole-table reads (Scan, QueryIndex,
// TableBytes, TableItemCount) must return consistent snapshots: writes that
// complete strictly before the call are reflected in the result, the
// property Beldi's DAAL traversal needs from scans (§4.1).
type Backend interface {
	// CreateTable registers a new table; ErrTableExists on duplicates.
	CreateTable(schema Schema) error
	// DeleteTable drops a table and its data.
	DeleteTable(name string) error
	// TableNames lists tables in sorted order.
	TableNames() []string
	// TableShards reports the shard count of an existing table (1 for
	// backends without striping).
	TableShards(name string) (int, error)
	// TableSchema returns an existing table's schema (Shards resolved to
	// the effective stripe count) — what adoption checks against when a
	// durable deployment reopens its tables.
	TableSchema(name string) (Schema, error)
	// TableBytes reports the table's current storage footprint.
	TableBytes(name string) (int, error)
	// TableItemCount reports the number of live rows.
	TableItemCount(name string) (int, error)

	// Get returns a deep copy of the item at key (strongly consistent).
	Get(table string, key Key) (Item, bool, error)
	// GetProj is Get with a server-side projection.
	GetProj(table string, key Key, proj []Path) (Item, bool, error)
	// Put installs item if cond holds against the current (possibly absent)
	// row; nil cond always passes.
	Put(table string, item Item, cond Cond) error
	// Update applies update actions to the row at key if cond holds,
	// upserting a missing row.
	Update(table string, key Key, cond Cond, updates ...Update) error
	// Delete removes the row at key if cond holds; deleting an absent row
	// with a passing condition is a no-op.
	Delete(table string, key Key, cond Cond) error

	// Query returns one partition's rows in sort-key order.
	Query(table string, hash Value, opts QueryOpts) ([]Item, error)
	// QueryIndex queries a secondary index by its hash attribute.
	QueryIndex(table, index string, hash Value, opts QueryOpts) ([]Item, error)
	// Scan walks the whole table in deterministic partition order.
	Scan(table string, opts QueryOpts) ([]Item, error)

	// TransactWrite applies all ops atomically or none, reporting per-op
	// outcomes via *TxCanceledError.
	TransactWrite(ops []TxOp) error

	// Metrics exposes the backend's live traffic counters.
	Metrics() *Metrics
}

// Compile-time check: the in-memory dynamo store is a Backend.
var _ Backend = (*dynamo.Store)(nil)

// AsDynamo unwraps a Backend down to its concrete in-memory *dynamo.Store
// when the backend is (or wraps) one — the accessor benches use to reach
// shard- and batching-specific knobs (SetGroupCommit, SetLatency) that are
// implementation details, not part of the seam. Backends that wrap a dynamo
// store implement interface{ DynamoStore() *dynamo.Store }.
func AsDynamo(b Backend) (*dynamo.Store, bool) {
	switch s := b.(type) {
	case *dynamo.Store:
		return s, true
	case interface{ DynamoStore() *dynamo.Store }:
		return s.DynamoStore(), true
	}
	return nil, false
}

// Fencer is an optional Backend extension implemented by speculation
// overlays (internal/pipeline): Fence blocks until every write issued
// before the call is durable on the underlying substrate. Externally
// visible effects — a workflow's entry reply above all — must not be
// released until the writes they depend on have cleared a fence.
type Fencer interface {
	// Fence blocks until the durability watermark catches up with every
	// previously issued write, returning the overlay's sticky flush error
	// if the pipeline has failed.
	Fence() error
}

// Fence makes b durable up to the current write watermark when it is a
// Fencer, and is a free no-op for every synchronous backend (the memory
// store, walstore, and remote client are durable at write return already).
// Effect-releasing call sites use this helper so the hot path stays
// overlay-agnostic.
func Fence(b Backend) error {
	if f, ok := b.(Fencer); ok {
		return f.Fence()
	}
	return nil
}

// DefaultWatchBuffer is the per-subscription event buffer shared by every
// backend's watch implementation.
const DefaultWatchBuffer = dynamo.DefaultWatchBuffer

// CommitEvent is one committed write observed through a watch subscription
// (a wakeup hint carrying the table, the row's hash-key value, and the
// table's notification sequence number).
type CommitEvent = dynamo.CommitEvent

// Subscription is a live handle on a table's commit stream. Events is the
// channel form for select-based consumers; Wait is the timer-bounded
// blocking form used inside retry loops (and the form deterministic
// simulation wrappers reimplement over virtual time). Delivery is
// at-least-one-wakeup per commit: events may be coalesced when a subscriber
// lags, so consumers treat an event as "re-read the table now", never as
// the data itself.
type Subscription = dynamo.Subscription

// Watcher is an optional Backend extension: commit-stream subscriptions per
// table (and optionally per partition). The memory store notifies when a
// write's group-commit batch completes; walstore notifies after the WAL
// fsync that made the write durable; the pipeline overlay delegates to its
// base so only durable (flushed) commits notify; the remote client streams
// the server's events over a push frame. Registration is synchronous:
// every commit that completes after Watch returns produces a wakeup.
type Watcher interface {
	// Watch subscribes to table's commit stream; a Null hash watches every
	// partition, otherwise only rows whose hash-key value equals hash.
	Watch(table string, hash Value) (Subscription, error)
}

// Watch subscribes to table's commit stream when b supports it, returning
// (nil, false) for backends without push — the capability-probe helper
// every consumer uses so poll loops degrade gracefully (the same pattern as
// Fence over Fencer). Errors from a supporting backend (unknown table, lost
// connection) also report (nil, false): the caller's fallback is polling,
// which surfaces real errors on its own.
func Watch(b Backend, table string, hash Value) (Subscription, bool) {
	w, ok := b.(Watcher)
	if !ok {
		return nil, false
	}
	sub, err := w.Watch(table, hash)
	if err != nil || sub == nil {
		return nil, false
	}
	return sub, true
}

// Compile-time check: the in-memory dynamo store is a Watcher.
var _ Watcher = (*dynamo.Store)(nil)

// MustCreateTable is Backend.CreateTable, panicking on error; for setup
// code (the method-form convenience the concrete stores offer, spelled as a
// function over the seam).
func MustCreateTable(b Backend, schema Schema) {
	if err := b.CreateTable(schema); err != nil {
		panic(err)
	}
}
