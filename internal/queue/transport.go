package queue

// Transport adapts a Broker to the delivery interface core.Env.AsyncInvoke
// uses for durable asynchronous invocations (core.AsyncTransport, satisfied
// structurally so this package stays independent of core). Each function
// gets its own invocation queue, auto-provisioned on first delivery; the
// platform-side event-source mapper drains it back into the function.
//
// Delivery here is at least once — a caller crash between enqueue and its
// next crash point re-enqueues on re-execution — which is exactly what
// Beldi's asyncInvoke protocol budgets for: the payload is an
// intent-addressed run envelope, and the callee skips intents that are
// already complete.
type Transport struct {
	broker *Broker
	opts   Options
}

// NewTransport creates a transport delivering through broker; queues it
// provisions use opts.
func NewTransport(broker *Broker, opts Options) *Transport {
	return &Transport{broker: broker, opts: opts}
}

// InvokeQueuePrefix namespaces the per-function invocation queues.
const InvokeQueuePrefix = "invoke."

// QueueFor names the invocation queue of a function.
func QueueFor(fn string) string { return InvokeQueuePrefix + fn }

// Broker returns the underlying broker (for wiring mappers and inspection).
func (t *Transport) Broker() *Broker { return t.broker }

// Deliver durably enqueues payload for fn, creating fn's invocation queue if
// this is the first delivery.
func (t *Transport) Deliver(fn string, payload Value) error {
	q := QueueFor(fn)
	if err := t.broker.EnsureQueue(q, t.opts); err != nil {
		return err
	}
	_, err := t.broker.Enqueue(q, payload)
	return err
}

// EnsureQueueFor provisions fn's invocation queue ahead of any delivery (so
// event-source mappers can be registered before the first message flows).
func (t *Transport) EnsureQueueFor(fn string) error {
	return t.broker.EnsureQueue(QueueFor(fn), t.opts)
}
