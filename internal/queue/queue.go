// Package queue is a durable, at-least-once message-queue subsystem — the
// slice of SQS/EventBridge that event-driven serverless workflows depend on
// — layered on the same internal/dynamo substrate as the rest of the
// reproduction, so every queue operation pays store-shaped latency and is
// atomic only within a single row.
//
// Semantics follow SQS standard queues: Enqueue durably appends a message;
// Receive claims up to a batch of visible messages, hiding each behind a
// visibility timeout and handing back a receipt; Ack deletes a message by
// receipt; Nack returns it to the queue immediately. A consumer that crashes
// mid-handler simply never acks — the message reappears after the visibility
// timeout, with its receive count incremented. Messages whose receive count
// exceeds the queue's redelivery budget are moved to a dead-letter queue
// instead of being delivered again, bounding the damage of poison messages.
//
// Delivery is at least once; exactly-once downstream is the consumer's job.
// Beldi consumers get it for free: the queued payload is an intent-addressed
// invocation envelope, and re-deliveries replay deterministically against
// the intent table (§3.3 of the paper). This pairing — durable message +
// logged intent — is what lets core.Env.AsyncInvoke survive caller and
// platform crashes (the Triggerflow/Netherite-style composition layer; see
// platform.Mapper for the polling trigger side).
package queue

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/dynamo"
	"repro/internal/hist"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/uuid"
)

// Value is the message payload type, shared with the store and platform.
type Value = dynamo.Value

// Queue errors.
var (
	// ErrNoSuchQueue reports an operation on an undeclared queue.
	ErrNoSuchQueue = errors.New("queue: no such queue")
	// ErrQueueExists reports a duplicate Create.
	ErrQueueExists = errors.New("queue: queue already exists")
	// ErrStaleReceipt reports an Ack or Nack with a receipt that no longer
	// matches: the message's visibility timeout expired and it was
	// re-claimed (or already acked) by someone else. Callers treat this as
	// "someone else owns the message now", not as data loss.
	ErrStaleReceipt = errors.New("queue: stale receipt")
)

// Message is one received message. Receipt identifies this particular
// delivery: Ack and Nack require it, so a slow consumer whose claim expired
// cannot ack a message that has since been redelivered elsewhere.
type Message struct {
	ID           string
	Body         Value
	Receipt      string
	ReceiveCount int // deliveries including this one
	EnqueuedAt   int64
}

// Options configure a queue at Create time.
type Options struct {
	// VisibilityTimeout hides a received message from other consumers until
	// it is acked, nacked, or the timeout expires. 0 means
	// DefaultVisibilityTimeout.
	VisibilityTimeout time.Duration
	// MaxReceives is the redelivery budget: a message that comes back for
	// its (MaxReceives+1)th delivery is dead-lettered instead. 0 means
	// DefaultMaxReceives; negative disables dead-lettering.
	MaxReceives int
	// Shards is the shard count of the queue's message table. The default
	// (0, meaning 1) gives each queue single-shard affinity: all of a
	// queue's enqueues and claims share one commit stream, so the store's
	// group-commit path coalesces an enqueue burst into a handful of
	// batches, while different queues — separate tables — never contend.
	// Very hot queues can raise it to stripe messages across latches at the
	// cost of that coalescing. A queue reopened over a message table that
	// survived a prior broker adopts the surviving table's shard count (a
	// table's layout is fixed at creation).
	Shards int
}

// Defaults for Options zero values.
const (
	DefaultVisibilityTimeout = 30 * time.Second
	DefaultMaxReceives       = 5
)

func (o Options) withDefaults() Options {
	if o.VisibilityTimeout == 0 {
		o.VisibilityTimeout = DefaultVisibilityTimeout
	}
	if o.MaxReceives == 0 {
		o.MaxReceives = DefaultMaxReceives
	}
	if o.Shards == 0 {
		o.Shards = 1
	}
	return o
}

// BrokerOptions configure a Broker.
type BrokerOptions struct {
	// Store persists every queue — any storage.Backend. Required.
	Store storage.Backend
	// Clock drives enqueue timestamps and visibility expiry; defaults to the
	// wall clock (tests inject clock.Manual to expire timeouts instantly).
	Clock clock.Clock
	// IDs mints message ids and receipts; defaults to random UUIDs.
	IDs uuid.Source
}

// Broker manages a set of durable queues on one store.
type Broker struct {
	store storage.Backend
	clk   clock.Clock
	ids   uuid.Source

	mu     sync.RWMutex
	queues map[string]Options

	seq     atomic.Int64 // enqueue-order tiebreak within one broker process
	metrics Metrics

	// Telemetry wiring (SetTelemetry); both nil when telemetry is off.
	tel     atomic.Pointer[telemetry.Hub]
	histHop atomic.Pointer[hist.Histogram]
}

// NewBroker creates a broker.
func NewBroker(opts BrokerOptions) *Broker {
	if opts.Store == nil {
		panic("queue: NewBroker requires a Store")
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	ids := opts.IDs
	if ids == nil {
		ids = uuid.Random{}
	}
	return &Broker{store: opts.Store, clk: clk, ids: ids, queues: make(map[string]Options)}
}

// Metrics exposes the broker's counters.
func (b *Broker) Metrics() *Metrics { return &b.metrics }

// SetTelemetry attaches the broker to a telemetry hub: counters are
// registered under "queue", every delivery records an enqueue-to-receive
// queue.hop span, and hop latency feeds the "queue.hop" histogram.
func (b *Broker) SetTelemetry(h *telemetry.Hub) {
	if h == nil {
		return
	}
	b.tel.Store(h)
	b.histHop.Store(h.Registry.Histogram("queue.hop"))
	h.Registry.Register("queue", func() any { return b.metrics.Snapshot() })
}

// observeHop records one delivery's queue dwell: enqueue to receive. The
// span's intent comes from the message body when it is an invocation
// envelope (the platform's trigger path), so the hop shows up inside the
// workflow's trace between the caller's async step and the callee's run.
func (b *Broker) observeHop(queue string, m Message, now int64) {
	tel := b.tel.Load()
	if tel == nil {
		return
	}
	intent := ""
	if v, ok := m.Body.MapGet("InstanceId"); ok {
		intent = v.Str()
	}
	tel.Tracer.Record(telemetry.Span{
		Intent: intent, Kind: telemetry.KindQueueHop, Fn: queue, Name: m.ID,
		Start: m.EnqueuedAt * 1000, End: now * 1000,
		Replay: m.ReceiveCount > 1,
	})
	if h := b.histHop.Load(); h != nil && m.ReceiveCount == 1 {
		h.Record(time.Duration(now-m.EnqueuedAt) * time.Microsecond)
	}
}

// Message table attributes.
const (
	attrMsgID   = "MsgId"
	attrBody    = "Body"
	attrSeq     = "Seq"
	attrEnq     = "EnqueuedAt"
	attrVisible = "VisibleAt"
	attrRecv    = "ReceiveCount"
	attrReceipt = "Receipt"
	attrReason  = "Reason" // DLQ rows: why the message was dead-lettered
)

// Physical table names.
func tableOf(q string) string    { return "queue." + q }
func dlqTableOf(q string) string { return "queue." + q + ".dlq" }

// Create declares a queue, materializing its message table and dead-letter
// table.
func (b *Broker) Create(name string, opts Options) error {
	if name == "" {
		return fmt.Errorf("queue: Create: name is required")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.queues[name]; ok {
		return fmt.Errorf("%w: %s", ErrQueueExists, name)
	}
	opts = opts.withDefaults()
	// The DLQ stays single-shard: it is cold by construction.
	for _, s := range []dynamo.Schema{
		{Name: tableOf(name), HashKey: attrMsgID, Shards: opts.Shards},
		{Name: dlqTableOf(name), HashKey: attrMsgID, Shards: 1},
	} {
		err := b.store.CreateTable(s)
		if errors.Is(err, dynamo.ErrTableExists) {
			// Tables surviving from a prior broker are the point of
			// durability: a restarted broker reopens its queues, backlog
			// intact — and a table's shard layout is fixed at creation, so
			// the reopened queue adopts the surviving layout rather than
			// recording a Shards value the store isn't honoring.
			if s.Name == tableOf(name) {
				n, err := b.store.TableShards(s.Name)
				if err != nil {
					return err
				}
				opts.Shards = n
			}
			continue
		}
		if err != nil {
			return err
		}
	}
	b.queues[name] = opts
	return nil
}

// MustCreate is Create, panicking on error; for setup code.
func (b *Broker) MustCreate(name string, opts Options) {
	if err := b.Create(name, opts); err != nil {
		panic(err)
	}
}

// EnsureQueue creates the queue if it does not exist yet (idempotent
// declaration, used by the async transport's auto-provisioning).
func (b *Broker) EnsureQueue(name string, opts Options) error {
	if err := b.Create(name, opts); err != nil && !errors.Is(err, ErrQueueExists) {
		return err
	}
	return nil
}

// Queues lists declared queue names in sorted order.
func (b *Broker) Queues() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.queues))
	for n := range b.queues {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (b *Broker) options(name string) (Options, error) {
	b.mu.RLock()
	o, ok := b.queues[name]
	b.mu.RUnlock()
	if !ok {
		return Options{}, fmt.Errorf("%w: %s", ErrNoSuchQueue, name)
	}
	return o, nil
}

func (b *Broker) now() int64 { return b.clk.Now().UnixMicro() }

// Enqueue durably appends body to the queue and returns the message id. The
// message is visible immediately.
func (b *Broker) Enqueue(name string, body Value) (string, error) {
	return b.EnqueueDelayed(name, body, 0)
}

// EnqueueDelayed is Enqueue with an initial invisibility period (SQS's
// DelaySeconds).
func (b *Broker) EnqueueDelayed(name string, body Value, delay time.Duration) (string, error) {
	if _, err := b.options(name); err != nil {
		return "", err
	}
	now := b.now()
	seq := b.seq.Add(1)
	// Ids embed the enqueue time and a process-local sequence so scanning in
	// hash-key order approximates arrival order (best-effort, like SQS
	// standard queues); the uuid suffix keeps ids unique across brokers.
	id := fmt.Sprintf("%016x-%08x-%s", now, seq, b.ids.NewString())
	item := dynamo.Item{
		attrMsgID:   dynamo.S(id),
		attrBody:    body,
		attrSeq:     dynamo.NInt(seq),
		attrEnq:     dynamo.NInt(now),
		attrVisible: dynamo.NInt(now + delay.Microseconds()),
		attrRecv:    dynamo.NInt(0),
	}
	if err := b.store.Put(tableOf(name), item, dynamo.NotExists(dynamo.A(attrMsgID))); err != nil {
		return "", err
	}
	b.metrics.Enqueued.Add(1)
	return id, nil
}

// Receive claims up to max visible messages, hiding each behind the queue's
// visibility timeout and stamping a fresh receipt. Claims are per-message
// conditional updates, so concurrent consumers never receive the same
// delivery twice. Messages over their redelivery budget are moved to the
// dead-letter queue as a side effect and not returned. An empty result means
// no message was visible.
func (b *Broker) Receive(name string, max int) ([]Message, error) {
	opts, err := b.options(name)
	if err != nil {
		return nil, err
	}
	if max <= 0 {
		max = 1
	}
	now := b.now()
	// Candidate selection over-fetches so claim races with other consumers
	// still fill the batch.
	rows, err := b.store.Scan(tableOf(name), dynamo.QueryOpts{
		Filter: dynamo.Le(dynamo.A(attrVisible), dynamo.NInt(now)),
		Limit:  max * 2,
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][attrSeq].Int() < rows[j][attrSeq].Int() })

	var out []Message
	for _, row := range rows {
		if len(out) >= max {
			break
		}
		id := row[attrMsgID].Str()
		observedVis := row[attrVisible].Int()
		recv := int(row[attrRecv].Int())
		if opts.MaxReceives >= 0 && recv >= opts.MaxReceives {
			// Redelivery budget exhausted: dead-letter instead of delivering.
			if err := b.deadLetter(name, row, observedVis, "max-receives"); err != nil {
				return nil, err
			}
			continue
		}
		receipt := b.ids.NewString()
		// The claim: atomically hide the message, guarded on the visibility
		// we observed so racing consumers cannot double-claim one delivery.
		err := b.store.Update(tableOf(name), dynamo.HK(dynamo.S(id)),
			dynamo.And(
				dynamo.Exists(dynamo.A(attrMsgID)),
				dynamo.Eq(dynamo.A(attrVisible), dynamo.NInt(observedVis)),
			),
			dynamo.Set(dynamo.A(attrVisible), dynamo.NInt(now+opts.VisibilityTimeout.Microseconds())),
			dynamo.Set(dynamo.A(attrReceipt), dynamo.S(receipt)),
			dynamo.Add(dynamo.A(attrRecv), 1),
		)
		if err != nil {
			if errors.Is(err, dynamo.ErrConditionFailed) {
				continue // lost the race; another consumer claimed it
			}
			return nil, err
		}
		if recv > 0 {
			b.metrics.Redelivered.Add(1)
		}
		b.metrics.Received.Add(1)
		msg := Message{
			ID:           id,
			Body:         row[attrBody],
			Receipt:      receipt,
			ReceiveCount: recv + 1,
			EnqueuedAt:   row[attrEnq].Int(),
		}
		b.observeHop(name, msg, now)
		out = append(out, msg)
	}
	if len(out) == 0 {
		b.metrics.EmptyReceives.Add(1)
	}
	return out, nil
}

// deadLetter moves a message row to the queue's DLQ: copy first, then a
// delete guarded on the visibility we observed. The copy is idempotent (a
// racing mover writes the same row), and a crash between the two operations
// leaves the message live for a retry — at-least-once is preserved; the
// reverse order could lose the message outright.
func (b *Broker) deadLetter(name string, row dynamo.Item, observedVis int64, reason string) error {
	id := row[attrMsgID].Str()
	dead := row.Clone()
	dead[attrReason] = dynamo.S(reason)
	if err := b.store.Put(dlqTableOf(name), dead, nil); err != nil {
		return err
	}
	err := b.store.Delete(tableOf(name), dynamo.HK(dynamo.S(id)),
		dynamo.And(
			dynamo.Exists(dynamo.A(attrMsgID)),
			dynamo.Eq(dynamo.A(attrVisible), dynamo.NInt(observedVis)),
		))
	if err != nil {
		if errors.Is(err, dynamo.ErrConditionFailed) {
			// Another mover won the race; its DLQ copy equals ours. Only
			// over-budget movers ever touch this message now, so the stray
			// copy cannot disagree with the eventual delete.
			return nil
		}
		return err
	}
	b.metrics.DeadLettered.Add(1)
	return nil
}

// Ack deletes a received message, identified by its delivery receipt. A
// stale receipt (the claim expired and the message was redelivered, or it
// was already acked) returns ErrStaleReceipt and leaves the queue unchanged.
func (b *Broker) Ack(name, msgID, receipt string) error {
	if _, err := b.options(name); err != nil {
		return err
	}
	err := b.store.Delete(tableOf(name), dynamo.HK(dynamo.S(msgID)),
		dynamo.And(
			dynamo.Exists(dynamo.A(attrMsgID)),
			dynamo.Eq(dynamo.A(attrReceipt), dynamo.S(receipt)),
		))
	if err != nil {
		if errors.Is(err, dynamo.ErrConditionFailed) {
			b.metrics.StaleAcks.Add(1)
			return fmt.Errorf("%w: %s/%s", ErrStaleReceipt, name, msgID)
		}
		return err
	}
	b.metrics.Acked.Add(1)
	return nil
}

// Nack returns a received message to the queue immediately (visible now),
// identified by its delivery receipt. The receive count is not rolled back:
// a nack is a failed delivery and draws down the redelivery budget.
func (b *Broker) Nack(name, msgID, receipt string) error {
	if _, err := b.options(name); err != nil {
		return err
	}
	err := b.store.Update(tableOf(name), dynamo.HK(dynamo.S(msgID)),
		dynamo.And(
			dynamo.Exists(dynamo.A(attrMsgID)),
			dynamo.Eq(dynamo.A(attrReceipt), dynamo.S(receipt)),
		),
		dynamo.Set(dynamo.A(attrVisible), dynamo.NInt(b.now())),
		dynamo.Remove(dynamo.A(attrReceipt)),
	)
	if err != nil {
		if errors.Is(err, dynamo.ErrConditionFailed) {
			b.metrics.StaleAcks.Add(1)
			return fmt.Errorf("%w: %s/%s", ErrStaleReceipt, name, msgID)
		}
		return err
	}
	b.metrics.Nacked.Add(1)
	return nil
}

// Watch subscribes to the queue's commit stream when the backing store
// supports push: every enqueue (and visibility change) wakes the
// subscription, so consumers can block on arrival instead of polling. The
// second result is false when the store has no push support or the queue
// does not exist — callers fall back to their poll timer.
func (b *Broker) Watch(name string) (storage.Subscription, bool) {
	if _, err := b.options(name); err != nil {
		return nil, false
	}
	return storage.Watch(b.store, tableOf(name), dynamo.Null)
}

// Len counts messages currently visible (receivable now).
func (b *Broker) Len(name string) (int, error) {
	if _, err := b.options(name); err != nil {
		return 0, err
	}
	rows, err := b.store.Scan(tableOf(name), dynamo.QueryOpts{
		Filter:     dynamo.Le(dynamo.A(attrVisible), dynamo.NInt(b.now())),
		Projection: []dynamo.Path{dynamo.A(attrMsgID)},
	})
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Depth counts all live messages, visible and in flight.
func (b *Broker) Depth(name string) (int, error) {
	if _, err := b.options(name); err != nil {
		return 0, err
	}
	n, err := b.store.TableItemCount(tableOf(name))
	if err != nil {
		return 0, err
	}
	return n, nil
}

// DeadLetters returns the dead-letter queue's messages in arrival order.
func (b *Broker) DeadLetters(name string) ([]Message, error) {
	if _, err := b.options(name); err != nil {
		return nil, err
	}
	rows, err := b.store.Scan(dlqTableOf(name), dynamo.QueryOpts{})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][attrSeq].Int() < rows[j][attrSeq].Int() })
	out := make([]Message, 0, len(rows))
	for _, row := range rows {
		out = append(out, Message{
			ID:           row[attrMsgID].Str(),
			Body:         row[attrBody],
			ReceiveCount: int(row[attrRecv].Int()),
			EnqueuedAt:   row[attrEnq].Int(),
		})
	}
	return out, nil
}

// Redrive moves every dead-lettered message back onto the main queue with a
// reset redelivery budget (the operational "fixed the consumer, try again"
// path). It returns the number of messages redriven.
//
// The reinsert is guarded on the message id being absent from the main
// queue. An earlier redrive (this process's or another's) that crashed
// between its put and its DLQ delete leaves the message live in both
// places; an unconditional put here would then overwrite the live row —
// resetting its redelivery budget and, worse, erasing the Receipt of a
// consumer holding an in-flight claim, forcing a duplicate delivery. With
// the guard, the second redrive just completes the first one's delete.
func (b *Broker) Redrive(name string) (int, error) {
	if _, err := b.options(name); err != nil {
		return 0, err
	}
	rows, err := b.store.Scan(dlqTableOf(name), dynamo.QueryOpts{})
	if err != nil {
		return 0, err
	}
	n := 0
	for _, row := range rows {
		id := row[attrMsgID].Str()
		live := row.Clone()
		delete(live, attrReason)
		delete(live, attrReceipt)
		live[attrRecv] = dynamo.NInt(0)
		live[attrVisible] = dynamo.NInt(b.now())
		err := b.store.Put(tableOf(name), live, dynamo.NotExists(dynamo.A(attrMsgID)))
		if err != nil && !errors.Is(err, dynamo.ErrConditionFailed) {
			return n, err
		}
		if err := b.store.Delete(dlqTableOf(name), dynamo.HK(dynamo.S(id)), nil); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Metrics counts broker activity across all queues.
type Metrics struct {
	Enqueued      atomic.Int64
	Received      atomic.Int64
	Acked         atomic.Int64
	Nacked        atomic.Int64
	Redelivered   atomic.Int64
	DeadLettered  atomic.Int64
	StaleAcks     atomic.Int64
	EmptyReceives atomic.Int64
}

// MetricsView is a point-in-time copy for reporting — the common snapshot
// shape shared with core.Stats, dynamo.Metrics, and the other subsystems.
type MetricsView struct {
	Enqueued, Received, Acked, Nacked int64
	Redelivered, DeadLettered         int64
	StaleAcks, EmptyReceives          int64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsView {
	return MetricsView{
		Enqueued:      m.Enqueued.Load(),
		Received:      m.Received.Load(),
		Acked:         m.Acked.Load(),
		Nacked:        m.Nacked.Load(),
		Redelivered:   m.Redelivered.Load(),
		DeadLettered:  m.DeadLettered.Load(),
		StaleAcks:     m.StaleAcks.Load(),
		EmptyReceives: m.EmptyReceives.Load(),
	}
}
