package queue

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamo"
	"repro/internal/storage"
)

// Durable timers: registrations in a store-backed timer table that fire by
// enqueueing a message onto an ordinary queue when their due time passes —
// the EventBridge-Scheduler slice of the event subsystem. A fire is one
// TransactWrite that atomically pairs the message insert with the timer
// row's advance (periodic) or delete (one-shot), so a firer killed mid-fire
// leaves either both effects or neither: re-scanning after recovery either
// sees the timer still due (nothing happened) or already advanced (the
// message is durably queued). Racing firers collapse the same way — the
// loser's transaction cancels on the Fires guard — which makes the fire
// exactly-once per (timer, occurrence) without any coordination beyond the
// store's conditional writes. Delivery of the fired message is then the
// queue's ordinary at-least-once contract, and Beldi consumers dedup it
// through the intent table as usual.
//
// The background pump watches the timer table's commit stream when the
// store pushes (storage.Watcher), so a fresh Schedule with a near due time
// wakes it immediately; the fallback sleep is min(time to next due, the
// poll interval), so a pushless store still fires on time.

// Timer table attributes.
const (
	attrTimerID = "TimerId"
	attrTimerQ  = "Queue"
	attrDue     = "DueAt"  // microseconds, broker clock
	attrPeriod  = "Period" // microseconds; 0 = one-shot
	attrFires   = "Fires"  // completed fire count; the advance guard
	attrGen     = "Gen"    // registration nonce: re-registered ids mint fresh message ids
	attrStamp   = "StampKey"
)

// DefaultTimerTable is the timer registration table's name.
const DefaultTimerTable = "queue.timers"

// DefaultTimerPoll is the pump's fallback poll interval.
const DefaultTimerPoll = 50 * time.Millisecond

// TimerSpec describes one registration.
type TimerSpec struct {
	// ID names the timer; Schedule is idempotent per id (first write wins).
	ID string
	// Queue receives the fired message. It must be declared on the broker by
	// fire time.
	Queue string
	// Body is the message payload enqueued on each fire.
	Body Value
	// Delay is the time until the first fire, from now on the broker's clock.
	Delay time.Duration
	// Period repeats the timer every Period after the first fire; 0 makes it
	// one-shot. A pump that was down for several periods catches up one fire
	// per due period, each with its own message.
	Period time.Duration
	// StampKey, when non-empty and Body is a map, names a map entry each
	// fire sets to the occurrence's deterministic message id. Consumers that
	// dedup on that entry (Beldi adopts it as the instance id when it is
	// "InstanceId") turn the queue's at-least-once delivery into exactly-once
	// processing per occurrence.
	StampKey string
}

// TimerOptions configure a TimerService.
type TimerOptions struct {
	// Table is the registration table name; "" means DefaultTimerTable.
	Table string
	// PollInterval is the pump's fallback poll cadence; 0 means
	// DefaultTimerPoll.
	PollInterval time.Duration
}

// TimerService manages durable timer registrations on one broker's store.
// Create with NewTimerService, then either Start the background pump or
// drive firing deterministically with FireDue.
type TimerService struct {
	b    *Broker
	tbl  string
	poll time.Duration

	metrics TimerMetrics

	mu      sync.Mutex
	stopCh  chan struct{}
	doneCh  chan struct{}
	started bool

	// subMu guards the lazily acquired push subscription on the timer table
	// (nil when the store has no push support or the subscription died).
	subMu sync.Mutex
	sub   storage.Subscription
}

// NewTimerService creates (or reopens) the timer table on b's store.
func NewTimerService(b *Broker, opts TimerOptions) (*TimerService, error) {
	if opts.Table == "" {
		opts.Table = DefaultTimerTable
	}
	if opts.PollInterval == 0 {
		opts.PollInterval = DefaultTimerPoll
	}
	err := b.store.CreateTable(dynamo.Schema{Name: opts.Table, HashKey: attrTimerID, Shards: 1})
	if err != nil && !errors.Is(err, dynamo.ErrTableExists) {
		return nil, err
	}
	return &TimerService{b: b, tbl: opts.Table, poll: opts.PollInterval}, nil
}

// Metrics exposes the service's counters.
func (ts *TimerService) Metrics() *TimerMetrics { return &ts.metrics }

// Table returns the registration table's name.
func (ts *TimerService) Table() string { return ts.tbl }

// Schedule durably registers a timer. Idempotent per id: re-scheduling an
// id that is still registered is a no-op (the durable registration already
// exists), so workflows can retry Schedule safely.
func (ts *TimerService) Schedule(spec TimerSpec) error {
	if spec.ID == "" || spec.Queue == "" {
		return fmt.Errorf("queue: Schedule: ID and Queue are required")
	}
	if spec.Delay < 0 || spec.Period < 0 {
		return fmt.Errorf("queue: Schedule: negative Delay/Period")
	}
	if _, err := ts.b.options(spec.Queue); err != nil {
		return err
	}
	item := dynamo.Item{
		attrTimerID: dynamo.S(spec.ID),
		attrTimerQ:  dynamo.S(spec.Queue),
		attrBody:    spec.Body,
		attrDue:     dynamo.NInt(ts.b.now() + spec.Delay.Microseconds()),
		attrPeriod:  dynamo.NInt(spec.Period.Microseconds()),
		attrFires:   dynamo.NInt(0),
		attrGen:     dynamo.S(ts.b.ids.NewString()),
	}
	if spec.StampKey != "" {
		item[attrStamp] = dynamo.S(spec.StampKey)
	}
	err := ts.b.store.Put(ts.tbl, item, dynamo.NotExists(dynamo.A(attrTimerID)))
	if err != nil {
		if errors.Is(err, dynamo.ErrConditionFailed) {
			return nil // already registered
		}
		return err
	}
	ts.metrics.Scheduled.Add(1)
	return nil
}

// Cancel removes a registration. Unknown ids are a no-op; a fire that
// already committed is not recalled.
func (ts *TimerService) Cancel(id string) error {
	err := ts.b.store.Delete(ts.tbl, dynamo.HK(dynamo.S(id)), nil)
	if err != nil {
		return err
	}
	ts.metrics.Canceled.Add(1)
	return nil
}

// FireDue fires every registration whose due time has passed, returning how
// many fired. Safe to call concurrently with other firers (races collapse on
// the store's conditions) and deterministic enough for tests to drive
// directly. A queue-level error on one timer does not stop the others; the
// first such error is returned after the pass.
func (ts *TimerService) FireDue() (int, error) {
	now := ts.b.now()
	rows, err := ts.b.store.Scan(ts.tbl, dynamo.QueryOpts{
		Filter: dynamo.Le(dynamo.A(attrDue), dynamo.NInt(now)),
	})
	if err != nil {
		return 0, err
	}
	// Due order, id tiebreak: deterministic fire order for tests and replay.
	sort.Slice(rows, func(i, j int) bool {
		if d := rows[i][attrDue].Int() - rows[j][attrDue].Int(); d != 0 {
			return d < 0
		}
		return rows[i][attrTimerID].Str() < rows[j][attrTimerID].Str()
	})
	fired := 0
	var firstErr error
	for _, row := range rows {
		ok, err := ts.fireOne(row, now)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if ok {
			fired++
		}
	}
	return fired, firstErr
}

// fireOne attempts one timer's fire: a single transaction that inserts the
// occurrence's message and advances (or deletes) the registration. The
// message id embeds the registration nonce and fire count, so every
// occurrence — across crashes, races, and re-registrations — gets a
// distinct, deterministic id.
func (ts *TimerService) fireOne(row dynamo.Item, now int64) (bool, error) {
	id := row[attrTimerID].Str()
	q := row[attrTimerQ].Str()
	fires := row[attrFires].Int()
	period := row[attrPeriod].Int()
	if _, err := ts.b.options(q); err != nil {
		// The target queue is not declared on this broker (e.g. a surviving
		// registration from a prior deployment). Leave the row for an
		// operator; firing cannot proceed.
		ts.metrics.Orphaned.Add(1)
		return false, err
	}
	msgID := fmt.Sprintf("timer-%s-%s-%016x", id, row[attrGen].Str(), fires)
	body := row[attrBody]
	if sk := row[attrStamp].Str(); sk != "" {
		if m := body.Map(); m != nil {
			stamped := make(map[string]dynamo.Value, len(m)+1)
			for k, v := range m {
				stamped[k] = v
			}
			stamped[sk] = dynamo.S(msgID)
			body = dynamo.M(stamped)
		}
	}
	msg := dynamo.Item{
		attrMsgID:   dynamo.S(msgID),
		attrBody:    body,
		attrSeq:     dynamo.NInt(ts.b.seq.Add(1)),
		attrEnq:     dynamo.NInt(now),
		attrVisible: dynamo.NInt(now),
		attrRecv:    dynamo.NInt(0),
	}
	guard := dynamo.And(
		dynamo.Exists(dynamo.A(attrTimerID)),
		dynamo.Eq(dynamo.A(attrFires), dynamo.NInt(fires)),
	)
	ops := []dynamo.TxOp{{
		Table: tableOf(q),
		Key:   dynamo.HK(dynamo.S(msgID)),
		Put:   msg,
		Cond:  dynamo.NotExists(dynamo.A(attrMsgID)),
	}}
	if period > 0 {
		ops = append(ops, dynamo.TxOp{
			Table: ts.tbl,
			Key:   dynamo.HK(dynamo.S(id)),
			Cond:  guard,
			Updates: []dynamo.Update{
				dynamo.Set(dynamo.A(attrDue), dynamo.NInt(row[attrDue].Int()+period)),
				dynamo.Add(dynamo.A(attrFires), 1),
			},
		})
	} else {
		ops = append(ops, dynamo.TxOp{
			Table:  ts.tbl,
			Key:    dynamo.HK(dynamo.S(id)),
			Cond:   guard,
			Delete: true,
		})
	}
	if err := ts.b.store.TransactWrite(ops); err != nil {
		if errors.Is(err, dynamo.ErrConditionFailed) {
			// Another firer committed this occurrence first (or the timer was
			// canceled mid-pass). Either way the occurrence is settled.
			ts.metrics.Races.Add(1)
			return false, nil
		}
		return false, err
	}
	ts.metrics.Fired.Add(1)
	ts.b.metrics.Enqueued.Add(1)
	return true, nil
}

// Timers returns the live registrations, sorted by id.
func (ts *TimerService) Timers() ([]TimerSpec, error) {
	rows, err := ts.b.store.Scan(ts.tbl, dynamo.QueryOpts{})
	if err != nil {
		return nil, err
	}
	now := ts.b.now()
	out := make([]TimerSpec, 0, len(rows))
	for _, row := range rows {
		out = append(out, TimerSpec{
			ID:     row[attrTimerID].Str(),
			Queue:  row[attrTimerQ].Str(),
			Body:   row[attrBody],
			Delay:  time.Duration(row[attrDue].Int()-now) * time.Microsecond,
			Period: time.Duration(row[attrPeriod].Int()) * time.Microsecond,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// nextDue returns the earliest registered due time; ok is false when no
// timer is registered.
func (ts *TimerService) nextDue() (int64, bool) {
	rows, err := ts.b.store.Scan(ts.tbl, dynamo.QueryOpts{
		Projection: []dynamo.Path{dynamo.A(attrDue)},
	})
	if err != nil || len(rows) == 0 {
		return 0, false
	}
	min := rows[0][attrDue].Int()
	for _, row := range rows[1:] {
		if d := row[attrDue].Int(); d < min {
			min = d
		}
	}
	return min, true
}

// Start launches the background pump. Idempotent while running.
func (ts *TimerService) Start() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.started {
		return
	}
	ts.started = true
	ts.stopCh = make(chan struct{})
	ts.doneCh = make(chan struct{})
	go ts.loop(ts.stopCh, ts.doneCh)
}

// Stop halts the pump and waits for the in-flight pass to finish.
func (ts *TimerService) Stop() {
	ts.mu.Lock()
	if !ts.started {
		ts.mu.Unlock()
		return
	}
	ts.started = false
	stopCh, doneCh := ts.stopCh, ts.doneCh
	ts.mu.Unlock()
	close(stopCh)
	<-doneCh
}

func (ts *TimerService) loop(stopCh, doneCh chan struct{}) {
	defer close(doneCh)
	defer ts.closeSub()
	for {
		select {
		case <-stopCh:
			return
		default:
		}
		n, err := ts.FireDue()
		if err != nil {
			ts.metrics.Errors.Add(1)
		}
		if n > 0 {
			continue // more may already be due
		}
		ts.idleWait(stopCh)
	}
}

// idleWait parks the pump until a timer is likely due: the earlier of the
// next registered due time and the fallback poll interval, cut short by a
// commit on the timer table (a Schedule, Cancel, or another firer's advance)
// when the store pushes.
func (ts *TimerService) idleWait(cancel <-chan struct{}) {
	wait := ts.poll
	if due, ok := ts.nextDue(); ok {
		if d := time.Duration(due-ts.b.now()) * time.Microsecond; d < wait {
			wait = d
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
	}
	sub := ts.watchSub()
	timer := time.NewTimer(wait)
	defer timer.Stop()
	if sub == nil {
		select {
		case <-cancel:
		case <-timer.C:
		}
		return
	}
	select {
	case _, ok := <-sub.Events():
		if !ok {
			ts.dropSub(sub)
			select {
			case <-cancel:
			case <-timer.C:
			}
			return
		}
		ts.metrics.Wakeups.Add(1)
	case <-timer.C:
	case <-cancel:
	}
}

// watchSub returns the live push subscription on the timer table, acquiring
// one lazily; nil when the store has no push support.
func (ts *TimerService) watchSub() storage.Subscription {
	ts.subMu.Lock()
	defer ts.subMu.Unlock()
	if ts.sub == nil {
		ts.sub, _ = storage.Watch(ts.b.store, ts.tbl, dynamo.Null)
	}
	return ts.sub
}

func (ts *TimerService) dropSub(sub storage.Subscription) {
	ts.subMu.Lock()
	if ts.sub == sub {
		ts.sub = nil
	}
	ts.subMu.Unlock()
	sub.Close()
}

func (ts *TimerService) closeSub() {
	ts.subMu.Lock()
	sub := ts.sub
	ts.sub = nil
	ts.subMu.Unlock()
	if sub != nil {
		sub.Close()
	}
}

// TimerMetrics counts timer activity. Races counts fires lost to another
// firer's committed transaction (the exactly-once guard doing its job);
// Wakeups counts idle waits ended by a push event rather than the timer.
type TimerMetrics struct {
	Scheduled atomic.Int64
	Canceled  atomic.Int64
	Fired     atomic.Int64
	Races     atomic.Int64
	Orphaned  atomic.Int64
	Errors    atomic.Int64
	Wakeups   atomic.Int64
}

// TimerMetricsView is a point-in-time copy for reporting.
type TimerMetricsView struct {
	Scheduled, Canceled, Fired int64
	Races, Orphaned, Errors    int64
	Wakeups                    int64
}

// Snapshot copies the counters.
func (m *TimerMetrics) Snapshot() TimerMetricsView {
	return TimerMetricsView{
		Scheduled: m.Scheduled.Load(),
		Canceled:  m.Canceled.Load(),
		Fired:     m.Fired.Load(),
		Races:     m.Races.Load(),
		Orphaned:  m.Orphaned.Load(),
		Errors:    m.Errors.Load(),
		Wakeups:   m.Wakeups.Load(),
	}
}
