package queue

import (
	"errors"
	"fmt"

	"repro/internal/dynamo"
	"repro/internal/storage"
)

// Mailbox is a durable result store keyed by promise id — the fan-in half of
// the durable-promise protocol (core.Env.AsyncInvokePromise). Each cell is a
// single-assignment slot: the first Post wins and every later Post of the
// same id is a no-op, so a crashed-and-replayed callee (which recomputes the
// byte-identical result from its logs) can post idempotently, and a
// crashed-and-replayed awaiter always fetches the value the first completion
// deposited. Cells carry the owning caller instance so the caller's garbage
// collector can reap them together with the caller's intent.
//
// Like the broker's queues, a mailbox is a table on the shared dynamo
// substrate: posting and fetching pay store-shaped latency, and atomicity is
// per row — exactly the DynamoDB slice the rest of the reproduction builds
// on.
type Mailbox struct {
	store storage.Backend
	table string
}

// Mailbox table attributes.
const (
	attrPromiseID = "PromiseId"
	attrResult    = "Result"
	attrOwner     = "Owner"
)

// NewMailbox declares a mailbox table (idempotently — a table surviving a
// prior process is adopted, cells intact, which is what makes promises
// durable) and returns the handle. shards stripes the cell rows; 0 means the
// store's default.
func NewMailbox(store storage.Backend, name string, shards int) (*Mailbox, error) {
	if name == "" {
		return nil, fmt.Errorf("queue: NewMailbox: name is required")
	}
	err := store.CreateTable(dynamo.Schema{Name: name, HashKey: attrPromiseID, Shards: shards})
	if err != nil && !errors.Is(err, dynamo.ErrTableExists) {
		return nil, err
	}
	return &Mailbox{store: store, table: name}, nil
}

// Name returns the mailbox's table name.
func (m *Mailbox) Name() string { return m.table }

// Post deposits v as the result of promise id, owned by caller instance
// owner. First write wins: posting an already-posted id changes nothing and
// returns nil, which makes replayed completions (that deterministically
// recompute the same result) safe.
func (m *Mailbox) Post(id, owner string, v Value) error {
	item := dynamo.Item{
		attrPromiseID: dynamo.S(id),
		attrResult:    v,
		attrOwner:     dynamo.S(owner),
	}
	err := m.store.Put(m.table, item, dynamo.NotExists(dynamo.A(attrPromiseID)))
	if err != nil && !errors.Is(err, dynamo.ErrConditionFailed) {
		return err
	}
	return nil
}

// Fetch reads the posted result of promise id, reporting whether it has been
// posted yet.
func (m *Mailbox) Fetch(id string) (Value, bool, error) {
	it, ok, err := m.store.Get(m.table, dynamo.HK(dynamo.S(id)))
	if err != nil || !ok {
		return dynamo.Null, false, err
	}
	return it[attrResult], true, nil
}

// Watch subscribes to the commit stream of promise id's cell when the
// backing store supports push, so an awaiter can block until the result is
// posted instead of polling Fetch. False means no push support — the caller
// falls back to its poll-with-backoff loop.
func (m *Mailbox) Watch(id string) (storage.Subscription, bool) {
	return storage.Watch(m.store, m.table, dynamo.S(id))
}

// Cell identifies one mailbox cell: the promise id and the caller instance
// that owns it.
type Cell struct {
	ID    string
	Owner string
}

// Cells lists every cell's (id, owner) pair — the inspection surface the
// caller's garbage collector and fsck walk.
func (m *Mailbox) Cells() ([]Cell, error) {
	rows, err := m.store.Scan(m.table, dynamo.QueryOpts{
		Projection: []dynamo.Path{dynamo.A(attrPromiseID), dynamo.A(attrOwner)},
	})
	if err != nil {
		return nil, err
	}
	out := make([]Cell, 0, len(rows))
	for _, row := range rows {
		out = append(out, Cell{ID: row[attrPromiseID].Str(), Owner: row[attrOwner].Str()})
	}
	return out, nil
}

// Delete removes cell id; deleting an absent cell is a no-op.
func (m *Mailbox) Delete(id string) error {
	return m.store.Delete(m.table, dynamo.HK(dynamo.S(id)), nil)
}
