package queue

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dynamo"
)

func newTimerRig(t *testing.T) (*Broker, *clock.Manual, *TimerService) {
	t.Helper()
	b, clk := newTestBroker(t)
	b.MustCreate("q", Options{})
	ts, err := NewTimerService(b, TimerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return b, clk, ts
}

func TestTimerOneShotFires(t *testing.T) {
	b, clk, ts := newTimerRig(t)
	if err := ts.Schedule(TimerSpec{ID: "t1", Queue: "q", Body: dynamo.S("ding"), Delay: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if n, err := ts.FireDue(); err != nil || n != 0 {
		t.Fatalf("FireDue before due = (%d, %v), want (0, nil)", n, err)
	}
	clk.Advance(150 * time.Millisecond)
	if n, err := ts.FireDue(); err != nil || n != 1 {
		t.Fatalf("FireDue at due = (%d, %v), want (1, nil)", n, err)
	}
	msgs, err := b.Receive("q", 10)
	if err != nil || len(msgs) != 1 || msgs[0].Body.Str() != "ding" {
		t.Fatalf("Receive = (%v, %v), want one %q message", msgs, err, "ding")
	}
	// One-shot: the registration is consumed with the fire.
	if regs, _ := ts.Timers(); len(regs) != 0 {
		t.Fatalf("registrations after fire = %v, want none", regs)
	}
	if n, _ := ts.FireDue(); n != 0 {
		t.Fatalf("second FireDue fired %d, want 0 (exactly once)", n)
	}
}

func TestTimerPeriodicCatchesUpOnePerDuePeriod(t *testing.T) {
	b, clk, ts := newTimerRig(t)
	err := ts.Schedule(TimerSpec{ID: "tick", Queue: "q", Body: dynamo.S("tick"),
		Delay: 100 * time.Millisecond, Period: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(350 * time.Millisecond) // dues at 100, 200, 300 have all passed
	total := 0
	for i := 0; i < 10; i++ {
		n, err := ts.FireDue()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		total += n
	}
	if total != 3 {
		t.Fatalf("catch-up fired %d occurrences, want 3", total)
	}
	msgs, err := b.Receive("q", 10)
	if err != nil || len(msgs) != 3 {
		t.Fatalf("Receive = (%d msgs, %v), want 3", len(msgs), err)
	}
	ids := map[string]bool{}
	for _, m := range msgs {
		ids[m.ID] = true
	}
	if len(ids) != 3 {
		t.Fatalf("occurrence ids not distinct: %v", ids)
	}
	// Still registered: periodic timers survive their fires.
	if regs, _ := ts.Timers(); len(regs) != 1 {
		t.Fatalf("registrations = %v, want the periodic timer", regs)
	}
}

func TestTimerScheduleIsIdempotent(t *testing.T) {
	_, clk, ts := newTimerRig(t)
	spec := TimerSpec{ID: "once", Queue: "q", Body: dynamo.S("x"), Delay: 10 * time.Millisecond}
	if err := ts.Schedule(spec); err != nil {
		t.Fatal(err)
	}
	if err := ts.Schedule(spec); err != nil {
		t.Fatalf("re-Schedule = %v, want nil (idempotent)", err)
	}
	clk.Advance(20 * time.Millisecond)
	if n, _ := ts.FireDue(); n != 1 {
		t.Fatalf("fired %d, want 1 (duplicate registration must not double-fire)", n)
	}
}

func TestTimerCancel(t *testing.T) {
	_, clk, ts := newTimerRig(t)
	if err := ts.Schedule(TimerSpec{ID: "t", Queue: "q", Body: dynamo.Null, Delay: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Cancel("t"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if n, _ := ts.FireDue(); n != 0 {
		t.Fatalf("canceled timer fired %d times", n)
	}
}

// TestTimerRacingFirersFireExactlyOnce runs two services over the same table
// and fires concurrently: the transactional advance guard must collapse the
// race to one enqueued occurrence.
func TestTimerRacingFirersFireExactlyOnce(t *testing.T) {
	b, clk, ts1 := newTimerRig(t)
	ts2, err := NewTimerService(b, TimerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts1.Schedule(TimerSpec{ID: "contested", Queue: "q", Body: dynamo.S("x"), Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Millisecond)
	var wg sync.WaitGroup
	fired := make([]int, 2)
	for i, ts := range []*TimerService{ts1, ts2} {
		wg.Add(1)
		go func(i int, ts *TimerService) {
			defer wg.Done()
			n, err := ts.FireDue()
			if err != nil {
				t.Error(err)
			}
			fired[i] = n
		}(i, ts)
	}
	wg.Wait()
	if total := fired[0] + fired[1]; total != 1 {
		t.Fatalf("racing firers fired %d times total, want exactly 1", total)
	}
	if n, _ := b.Depth("q"); n != 1 {
		t.Fatalf("queue depth = %d, want exactly 1 occurrence", n)
	}
}

// TestTimerPumpPushWakeup pins the pump's push path: with no registered
// timers the pump parks on a huge fallback interval, and a fresh Schedule
// must wake it through the timer table's commit stream — the fired message
// appears long before any poll timer could have.
func TestTimerPumpPushWakeup(t *testing.T) {
	b := NewBroker(BrokerOptions{Store: dynamo.NewStore()})
	b.MustCreate("q", Options{})
	ts, err := NewTimerService(b, TimerOptions{PollInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts.Start()
	defer ts.Stop()
	time.Sleep(20 * time.Millisecond) // park on the subscription
	if err := ts.Schedule(TimerSpec{ID: "now", Queue: "q", Body: dynamo.S("pushed")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		msgs, err := b.Receive("q", 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 1 {
			if msgs[0].Body.Str() != "pushed" {
				t.Fatalf("fired body = %q, want %q", msgs[0].Body.Str(), "pushed")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timer did not fire: push wakeup lost and fallback poll is an hour out")
		}
		time.Sleep(time.Millisecond)
	}
	if ts.Metrics().Wakeups.Load() == 0 {
		t.Error("Wakeups = 0, want at least one push wakeup")
	}
}

// TestTimerStopInterruptsIdleWait pins that Stop returns promptly while the
// pump is parked with a long fallback interval.
func TestTimerStopInterruptsIdleWait(t *testing.T) {
	b := NewBroker(BrokerOptions{Store: dynamo.NewStore()})
	b.MustCreate("q", Options{})
	ts, err := NewTimerService(b, TimerOptions{PollInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts.Start()
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		ts.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not interrupt an idle wait with PollInterval = 1h")
	}
}
