package queue

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dynamo"
	"repro/internal/storage/storagetest"
)

func newTestBroker(t *testing.T) (*Broker, *clock.Manual) {
	t.Helper()
	clk := clock.NewManual(time.Unix(1_700_000_000, 0))
	b := NewBroker(BrokerOptions{Store: storagetest.Open(t), Clock: clk})
	return b, clk
}

func TestEnqueueReceiveAck(t *testing.T) {
	b, _ := newTestBroker(t)
	b.MustCreate("q", Options{})

	id, err := b.Enqueue("q", dynamo.S("hello"))
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Receive("q", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].ID != id || msgs[0].Body.Str() != "hello" {
		t.Fatalf("got %+v, want one message %s", msgs, id)
	}
	if msgs[0].ReceiveCount != 1 {
		t.Fatalf("ReceiveCount = %d, want 1", msgs[0].ReceiveCount)
	}
	if err := b.Ack("q", msgs[0].ID, msgs[0].Receipt); err != nil {
		t.Fatal(err)
	}
	if n, _ := b.Depth("q"); n != 0 {
		t.Fatalf("depth after ack = %d, want 0", n)
	}
}

func TestReceiveOrderIsEnqueueOrder(t *testing.T) {
	b, _ := newTestBroker(t)
	b.MustCreate("q", Options{})
	for i := 0; i < 5; i++ {
		if _, err := b.Enqueue("q", dynamo.NInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := b.Receive("q", 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		if m.Body.Int() != int64(i) {
			t.Fatalf("message %d carries %d, want enqueue order", i, m.Body.Int())
		}
	}
}

func TestInFlightMessageIsInvisible(t *testing.T) {
	b, _ := newTestBroker(t)
	b.MustCreate("q", Options{VisibilityTimeout: time.Second})
	if _, err := b.Enqueue("q", dynamo.S("x")); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := b.Receive("q", 1); len(msgs) != 1 {
		t.Fatal("first receive should claim the message")
	}
	msgs, err := b.Receive("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatalf("in-flight message was received again: %+v", msgs)
	}
	if b.Metrics().EmptyReceives.Load() == 0 {
		t.Fatal("empty receive not counted")
	}
}

func TestVisibilityTimeoutRedelivers(t *testing.T) {
	b, clk := newTestBroker(t)
	b.MustCreate("q", Options{VisibilityTimeout: time.Second})
	if _, err := b.Enqueue("q", dynamo.S("x")); err != nil {
		t.Fatal(err)
	}
	first, _ := b.Receive("q", 1)
	if len(first) != 1 {
		t.Fatal("expected initial delivery")
	}
	// The consumer "crashes": no ack. Before the timeout, nothing; after, a
	// redelivery with the receive count advanced and a fresh receipt.
	clk.Advance(999 * time.Millisecond)
	if msgs, _ := b.Receive("q", 1); len(msgs) != 0 {
		t.Fatal("message redelivered before visibility timeout")
	}
	clk.Advance(2 * time.Millisecond)
	second, err := b.Receive("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 1 {
		t.Fatal("message not redelivered after visibility timeout")
	}
	if second[0].ReceiveCount != 2 {
		t.Fatalf("ReceiveCount = %d, want 2", second[0].ReceiveCount)
	}
	if second[0].Receipt == first[0].Receipt {
		t.Fatal("redelivery reused the receipt")
	}
	if b.Metrics().Redelivered.Load() != 1 {
		t.Fatalf("Redelivered = %d, want 1", b.Metrics().Redelivered.Load())
	}
	// The first delivery's receipt is now stale: its ack must not delete the
	// redelivered message.
	if err := b.Ack("q", first[0].ID, first[0].Receipt); !errors.Is(err, ErrStaleReceipt) {
		t.Fatalf("stale ack err = %v, want ErrStaleReceipt", err)
	}
	if n, _ := b.Depth("q"); n != 1 {
		t.Fatalf("depth = %d, want 1 (stale ack must not delete)", n)
	}
	if err := b.Ack("q", second[0].ID, second[0].Receipt); err != nil {
		t.Fatal(err)
	}
}

func TestNackMakesMessageImmediatelyVisible(t *testing.T) {
	b, _ := newTestBroker(t)
	b.MustCreate("q", Options{VisibilityTimeout: time.Hour})
	if _, err := b.Enqueue("q", dynamo.S("x")); err != nil {
		t.Fatal(err)
	}
	msgs, _ := b.Receive("q", 1)
	if err := b.Nack("q", msgs[0].ID, msgs[0].Receipt); err != nil {
		t.Fatal(err)
	}
	again, err := b.Receive("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 {
		t.Fatal("nacked message not immediately receivable")
	}
	if again[0].ReceiveCount != 2 {
		t.Fatalf("ReceiveCount = %d, want 2 (nack draws down the budget)", again[0].ReceiveCount)
	}
}

func TestEnqueueDelayed(t *testing.T) {
	b, clk := newTestBroker(t)
	b.MustCreate("q", Options{})
	if _, err := b.EnqueueDelayed("q", dynamo.S("x"), time.Second); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := b.Receive("q", 1); len(msgs) != 0 {
		t.Fatal("delayed message visible too early")
	}
	clk.Advance(time.Second)
	if msgs, _ := b.Receive("q", 1); len(msgs) != 1 {
		t.Fatal("delayed message not visible after delay")
	}
}

func TestDeadLetterAfterBudget(t *testing.T) {
	b, clk := newTestBroker(t)
	b.MustCreate("q", Options{VisibilityTimeout: time.Millisecond, MaxReceives: 3})
	id, err := b.Enqueue("q", dynamo.S("poison"))
	if err != nil {
		t.Fatal(err)
	}
	// Three failed deliveries...
	for i := 0; i < 3; i++ {
		msgs, err := b.Receive("q", 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 {
			t.Fatalf("delivery %d: got %d messages", i+1, len(msgs))
		}
		clk.Advance(2 * time.Millisecond) // consumer dies; claim expires
	}
	// ...and the fourth receive moves it to the DLQ instead of delivering.
	msgs, err := b.Receive("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatalf("message over budget was delivered: %+v", msgs)
	}
	dead, err := b.DeadLetters("q")
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0].ID != id || dead[0].ReceiveCount != 3 {
		t.Fatalf("DLQ = %+v, want the poison message after 3 receives", dead)
	}
	if n, _ := b.Depth("q"); n != 0 {
		t.Fatalf("main queue depth = %d, want 0", n)
	}
	if b.Metrics().DeadLettered.Load() != 1 {
		t.Fatalf("DeadLettered = %d, want 1", b.Metrics().DeadLettered.Load())
	}
}

func TestRedriveRestoresDeadLetters(t *testing.T) {
	b, clk := newTestBroker(t)
	b.MustCreate("q", Options{VisibilityTimeout: time.Millisecond, MaxReceives: 1})
	if _, err := b.Enqueue("q", dynamo.S("retry-me")); err != nil {
		t.Fatal(err)
	}
	b.Receive("q", 1) //nolint:errcheck
	clk.Advance(2 * time.Millisecond)
	b.Receive("q", 1) //nolint:errcheck // dead-letters it
	if dead, _ := b.DeadLetters("q"); len(dead) != 1 {
		t.Fatal("expected one dead letter")
	}
	n, err := b.Redrive("q")
	if err != nil || n != 1 {
		t.Fatalf("Redrive = %d, %v; want 1, nil", n, err)
	}
	msgs, err := b.Receive("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Body.Str() != "retry-me" || msgs[0].ReceiveCount != 1 {
		t.Fatalf("redriven delivery = %+v, want fresh budget", msgs)
	}
	if dead, _ := b.DeadLetters("q"); len(dead) != 0 {
		t.Fatal("DLQ not emptied by redrive")
	}
}

// TestRedriveDoesNotClobberInFlightClaim is the multi-process regression:
// a redrive that crashed between its put and its DLQ delete leaves the
// message live in both tables. If a consumer then claims the live copy, a
// second redrive (on any broker over the same store) must not overwrite the
// claimed row — that would erase the consumer's receipt and reset the
// redelivery budget, turning one logical message into two deliveries.
func TestRedriveDoesNotClobberInFlightClaim(t *testing.T) {
	b, clk := newTestBroker(t)
	b.MustCreate("q", Options{VisibilityTimeout: time.Minute, MaxReceives: 1})
	if _, err := b.Enqueue("q", dynamo.S("m")); err != nil {
		t.Fatal(err)
	}
	// Drive the message to the DLQ.
	b.Receive("q", 1) //nolint:errcheck
	clk.Advance(2 * time.Minute)
	b.Receive("q", 1) //nolint:errcheck // over budget: dead-letters it
	if dead, _ := b.DeadLetters("q"); len(dead) != 1 {
		t.Fatal("expected one dead letter")
	}
	// Simulate a redrive that crashed after its put: copy the DLQ row back
	// to the main queue by hand, leaving the DLQ row in place.
	rows, err := b.store.Scan(dlqTableOf("q"), dynamo.QueryOpts{})
	if err != nil || len(rows) != 1 {
		t.Fatalf("dlq scan: %v %d", err, len(rows))
	}
	live := rows[0].Clone()
	delete(live, attrReason)
	delete(live, attrReceipt)
	live[attrRecv] = dynamo.NInt(0)
	live[attrVisible] = dynamo.NInt(clk.Now().UnixMicro())
	if err := b.store.Put(tableOf("q"), live, nil); err != nil {
		t.Fatal(err)
	}
	// A consumer claims the live copy.
	msgs, err := b.Receive("q", 1)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("receive live copy: %v %d", err, len(msgs))
	}
	// The second redrive completes the crashed one: DLQ emptied, but the
	// in-flight claim untouched.
	if _, err := b.Redrive("q"); err != nil {
		t.Fatal(err)
	}
	if dead, _ := b.DeadLetters("q"); len(dead) != 0 {
		t.Fatal("DLQ not emptied by completing redrive")
	}
	if err := b.Ack("q", msgs[0].ID, msgs[0].Receipt); err != nil {
		t.Fatalf("consumer ack after redrive: %v (receipt clobbered)", err)
	}
	if n, _ := b.Depth("q"); n != 0 {
		t.Fatalf("queue depth = %d after ack, want 0 (message duplicated)", n)
	}
}

func TestConcurrentConsumersNeverDoubleClaim(t *testing.T) {
	b, _ := newTestBroker(t)
	b.MustCreate("q", Options{VisibilityTimeout: time.Hour})
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := b.Enqueue("q", dynamo.NInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	seen := make(map[string]int)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				msgs, err := b.Receive("q", 7)
				if err != nil {
					t.Error(err)
					return
				}
				if len(msgs) == 0 {
					return
				}
				mu.Lock()
				for _, m := range msgs {
					seen[m.ID]++
				}
				mu.Unlock()
				for _, m := range msgs {
					if err := b.Ack("q", m.ID, m.Receipt); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("received %d distinct messages, want %d", len(seen), n)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("message %s delivered %d times while claims were live", id, c)
		}
	}
}

func TestQueueLifecycleErrors(t *testing.T) {
	b, _ := newTestBroker(t)
	if _, err := b.Enqueue("missing", dynamo.Null); !errors.Is(err, ErrNoSuchQueue) {
		t.Fatalf("err = %v, want ErrNoSuchQueue", err)
	}
	b.MustCreate("q", Options{})
	if err := b.Create("q", Options{}); !errors.Is(err, ErrQueueExists) {
		t.Fatalf("err = %v, want ErrQueueExists", err)
	}
	if err := b.EnsureQueue("q", Options{}); err != nil {
		t.Fatalf("EnsureQueue on existing queue: %v", err)
	}
	if got := b.Queues(); len(got) != 1 || got[0] != "q" {
		t.Fatalf("Queues() = %v", got)
	}
}

func TestBrokerRestartReopensDurableQueues(t *testing.T) {
	store := storagetest.Open(t)
	clk := clock.NewManual(time.Unix(1_700_000_000, 0))
	b1 := NewBroker(BrokerOptions{Store: store, Clock: clk})
	b1.MustCreate("q", Options{})
	if _, err := b1.Enqueue("q", dynamo.S("survivor")); err != nil {
		t.Fatal(err)
	}
	// The broker process "restarts": a fresh Broker over the same store must
	// reopen the queue (tables already exist) and see the backlog.
	b2 := NewBroker(BrokerOptions{Store: store, Clock: clk})
	if err := b2.EnsureQueue("q", Options{}); err != nil {
		t.Fatalf("reopening a durable queue: %v", err)
	}
	msgs, err := b2.Receive("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Body.Str() != "survivor" {
		t.Fatalf("backlog lost across broker restart: %+v", msgs)
	}
}

func TestDeadLetterSurvivesInBothTablesNever(t *testing.T) {
	// After dead-lettering, the message must exist in exactly one place: the
	// DLQ (the move copies first, then deletes — a crash in between retries,
	// never loses).
	b, clk := newTestBroker(t)
	b.MustCreate("q", Options{VisibilityTimeout: time.Millisecond, MaxReceives: 1})
	id, err := b.Enqueue("q", dynamo.S("x"))
	if err != nil {
		t.Fatal(err)
	}
	b.Receive("q", 1) //nolint:errcheck
	clk.Advance(2 * time.Millisecond)
	b.Receive("q", 1) //nolint:errcheck // dead-letters it
	if n, _ := b.Depth("q"); n != 0 {
		t.Fatalf("live depth = %d after dead-lettering, want 0", n)
	}
	dead, _ := b.DeadLetters("q")
	if len(dead) != 1 || dead[0].ID != id {
		t.Fatalf("DLQ = %+v", dead)
	}
}

func TestTransportDeliversToPerFunctionQueue(t *testing.T) {
	b, _ := newTestBroker(t)
	tr := NewTransport(b, Options{})
	if err := tr.Deliver("fn-a", dynamo.S("payload")); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Receive(QueueFor("fn-a"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Body.Str() != "payload" {
		t.Fatalf("got %+v", msgs)
	}
	// Deliveries to the same function reuse the queue.
	if err := tr.Deliver("fn-a", dynamo.S("again")); err != nil {
		t.Fatal(err)
	}
	if got := b.Queues(); len(got) != 1 {
		t.Fatalf("Queues() = %v, want one", got)
	}
}

func TestLenCountsOnlyVisible(t *testing.T) {
	b, _ := newTestBroker(t)
	b.MustCreate("q", Options{VisibilityTimeout: time.Hour})
	for i := 0; i < 3; i++ {
		if _, err := b.Enqueue("q", dynamo.NInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Receive("q", 1); err != nil {
		t.Fatal(err)
	}
	visible, _ := b.Len("q")
	depth, _ := b.Depth("q")
	if visible != 2 || depth != 3 {
		t.Fatalf("Len = %d, Depth = %d; want 2, 3", visible, depth)
	}
}

func TestReceiveBatchSizes(t *testing.T) {
	b, _ := newTestBroker(t)
	b.MustCreate("q", Options{VisibilityTimeout: time.Hour})
	for i := 0; i < 10; i++ {
		if _, err := b.Enqueue("q", dynamo.NInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []int{1, 4, 5} {
		msgs, err := b.Receive("q", want)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != want {
			t.Fatalf("Receive(%d) returned %d", want, len(msgs))
		}
	}
}

func BenchmarkEnqueueAckRoundTrip(b *testing.B) {
	br := NewBroker(BrokerOptions{Store: storagetest.Open(b)})
	br.MustCreate("bench", Options{VisibilityTimeout: time.Hour})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := br.Enqueue("bench", dynamo.NInt(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		msgs, err := br.Receive("bench", 1)
		if err != nil || len(msgs) != 1 {
			b.Fatalf("receive: %v (%d msgs)", err, len(msgs))
		}
		if err := br.Ack("bench", id, msgs[0].Receipt); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleBroker() {
	b := NewBroker(BrokerOptions{Store: dynamo.NewStore()})
	b.MustCreate("orders", Options{})
	b.Enqueue("orders", dynamo.S("order-1")) //nolint:errcheck
	msgs, _ := b.Receive("orders", 10)
	for _, m := range msgs {
		fmt.Println(m.Body.Str())
		b.Ack("orders", m.ID, m.Receipt) //nolint:errcheck
	}
	// Output: order-1
}

func TestQueueShardAffinityAndReopenAdoption(t *testing.T) {
	store := dynamo.NewStore(dynamo.WithShards(8))
	b1 := NewBroker(BrokerOptions{Store: store})
	// Default: per-queue single-shard affinity, overriding the store's
	// 8-shard default; DLQ single-shard too.
	b1.MustCreate("aff", Options{})
	for _, tbl := range []string{tableOf("aff"), dlqTableOf("aff")} {
		if n, err := store.TableShards(tbl); err != nil || n != 1 {
			t.Errorf("%s: %d shards, err %v; want 1", tbl, n, err)
		}
	}
	// Explicit striping for a hot queue.
	b1.MustCreate("hot", Options{Shards: 4})
	if n, _ := store.TableShards(tableOf("hot")); n != 4 {
		t.Errorf("hot queue: %d shards, want 4", n)
	}
	// A broker reopening a surviving table adopts its layout: the store
	// keeps 4 shards regardless of the reopening Shards value, and the
	// broker records the adopted count rather than the requested one.
	b2 := NewBroker(BrokerOptions{Store: store})
	if err := b2.Create("hot", Options{Shards: 16}); err != nil {
		t.Fatal(err)
	}
	if n, _ := store.TableShards(tableOf("hot")); n != 4 {
		t.Errorf("reopen changed table shards to %d", n)
	}
	if got := b2.queues["hot"].Shards; got != 4 {
		t.Errorf("reopened broker recorded Shards=%d, want adopted 4", got)
	}
	// The reopened queue still works against the surviving layout.
	if _, err := b2.Enqueue("hot", dynamo.S("m")); err != nil {
		t.Fatal(err)
	}
	msgs, err := b2.Receive("hot", 1)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("receive after reopen: %v (%d msgs)", err, len(msgs))
	}
}
