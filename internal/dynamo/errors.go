package dynamo

import (
	"errors"
	"fmt"
)

// ErrConditionFailed reports that a conditional operation's condition
// evaluated false. Beldi's lock-free case analysis (§4.3) branches on this
// error, so callers must be able to distinguish it from infrastructure
// failures; test with errors.Is.
var ErrConditionFailed = errors.New("dynamo: conditional check failed")

// ErrItemTooLarge reports that an operation would push a row past the
// table's item size cap (DynamoDB's 400 KB limit), the constraint that
// forces the linked DAAL to span rows.
var ErrItemTooLarge = errors.New("dynamo: item exceeds maximum size")

// ErrNoSuchTable reports an operation against an unknown table.
var ErrNoSuchTable = errors.New("dynamo: no such table")

// ErrTableExists reports CreateTable on an existing name.
var ErrTableExists = errors.New("dynamo: table already exists")

// ErrNoSuchIndex reports a query against an unknown secondary index.
var ErrNoSuchIndex = errors.New("dynamo: no such index")

// TxCanceledError reports a TransactWrite whose condition checks did not all
// pass; Reasons holds one entry per operation (nil for passing ops).
type TxCanceledError struct {
	Reasons []error
}

// Error summarizes the cancellation: the first failing op and its reason.
func (e *TxCanceledError) Error() string {
	for i, r := range e.Reasons {
		if r != nil {
			return fmt.Sprintf("dynamo: transaction canceled (op %d: %v)", i, r)
		}
	}
	return "dynamo: transaction canceled"
}

// Is makes errors.Is(err, ErrConditionFailed) true when any op failed its
// condition, so callers can treat transactional and single-row conditional
// failures uniformly.
func (e *TxCanceledError) Is(target error) bool {
	if target != ErrConditionFailed {
		return false
	}
	for _, r := range e.Reasons {
		if errors.Is(r, ErrConditionFailed) {
			return true
		}
	}
	return false
}
