package dynamo

import (
	"fmt"
	"strings"
)

// Cond is a condition expression evaluated atomically against a single row
// inside the store's atomicity scope, exactly like a DynamoDB condition
// expression. Beldi's entire at-most-once argument rests on these checks
// being atomic with the update they guard (§3.1 of the paper).
type Cond interface {
	Eval(it Item) bool
	String() string
}

type condExists struct{ p Path }
type condNotExists struct{ p Path }
type condCmp struct {
	p  Path
	op string // "=", "!=", "<", "<=", ">", ">="
	v  Value
}
type condAnd struct{ cs []Cond }
type condOr struct{ cs []Cond }
type condNot struct{ c Cond }
type condTrue struct{}

// Exists is true when the path resolves to a present (possibly NULL)
// attribute or map entry.
func Exists(p Path) Cond { return condExists{p} }

// NotExists is true when the path does not resolve.
func NotExists(p Path) Cond { return condNotExists{p} }

// Eq compares the attribute at p with v for deep equality. A missing
// attribute compares unequal to everything.
func Eq(p Path, v Value) Cond { return condCmp{p, "=", v} }

// Ne is the negation of Eq; missing attributes compare not-equal.
func Ne(p Path, v Value) Cond { return condCmp{p, "!=", v} }

// Lt is true when the attribute at p orders strictly before v. Missing
// attributes fail the comparison.
func Lt(p Path, v Value) Cond { return condCmp{p, "<", v} }

// Le is Lt-or-Eq.
func Le(p Path, v Value) Cond { return condCmp{p, "<=", v} }

// Gt is true when the attribute at p orders strictly after v.
func Gt(p Path, v Value) Cond { return condCmp{p, ">", v} }

// Ge is Gt-or-Eq.
func Ge(p Path, v Value) Cond { return condCmp{p, ">=", v} }

// And is true when every sub-condition is true. And() is true.
func And(cs ...Cond) Cond { return condAnd{cs} }

// Or is true when any sub-condition is true. Or() is false.
func Or(cs ...Cond) Cond { return condOr{cs} }

// Not negates a condition.
func Not(c Cond) Cond { return condNot{c} }

// True is the vacuous condition.
func True() Cond { return condTrue{} }

// IsNullOr is true when the attribute at p is missing, NULL, or satisfies
// the inner comparison — the shape of Beldi's lock-acquisition condition
// ("LockOwner = NULL || LockOwner.id = TXNID", Fig 11).
func IsNullOr(p Path, inner Cond) Cond {
	return Or(NotExists(p), Eq(p, Null), inner)
}

func (c condExists) Eval(it Item) bool {
	_, ok := it.Get(c.p)
	return ok
}
func (c condExists) String() string { return fmt.Sprintf("attribute_exists(%s)", c.p) }

func (c condNotExists) Eval(it Item) bool {
	_, ok := it.Get(c.p)
	return !ok
}
func (c condNotExists) String() string { return fmt.Sprintf("attribute_not_exists(%s)", c.p) }

func (c condCmp) Eval(it Item) bool {
	got, ok := it.Get(c.p)
	if !ok {
		// DynamoDB: comparisons against missing attributes fail, except
		// inequality which holds vacuously.
		return c.op == "!="
	}
	switch c.op {
	case "=":
		return got.Equal(c.v)
	case "!=":
		return !got.Equal(c.v)
	}
	cmp := got.Compare(c.v)
	switch c.op {
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	}
	return false
}
func (c condCmp) String() string { return fmt.Sprintf("%s %s %s", c.p, c.op, c.v) }

func (c condAnd) Eval(it Item) bool {
	for _, sub := range c.cs {
		if !sub.Eval(it) {
			return false
		}
	}
	return true
}
func (c condAnd) String() string { return joinConds(c.cs, " AND ") }

func (c condOr) Eval(it Item) bool {
	for _, sub := range c.cs {
		if sub.Eval(it) {
			return true
		}
	}
	return false
}
func (c condOr) String() string { return joinConds(c.cs, " OR ") }

func (c condNot) Eval(it Item) bool { return !c.c.Eval(it) }
func (c condNot) String() string    { return fmt.Sprintf("NOT (%s)", c.c) }

func (condTrue) Eval(Item) bool { return true }
func (condTrue) String() string { return "TRUE" }

func joinConds(cs []Cond, sep string) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, sep)
}
