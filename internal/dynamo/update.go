package dynamo

import "fmt"

// Update is one action of an update expression, applied atomically with the
// condition that guards it (DynamoDB's SET / ADD / REMOVE actions).
type Update interface {
	apply(it Item) error
	String() string
}

type updateSet struct {
	p Path
	v Value
}
type updateAdd struct {
	p Path
	d float64
}
type updateRemove struct{ p Path }

// Set stores v at path, creating the attribute (and, for map paths, the
// enclosing map) if absent.
func Set(p Path, v Value) Update { return updateSet{p, v} }

// Add increments the number at path by d, treating a missing attribute as 0
// — DynamoDB's ADD action, which Beldi uses for "LogSize = LogSize + 1".
func Add(p Path, d float64) Update { return updateAdd{p, d} }

// Remove deletes the attribute or map entry at path.
func Remove(p Path) Update { return updateRemove{p} }

func (u updateSet) apply(it Item) error {
	if !it.set(u.p, u.v) {
		return fmt.Errorf("dynamo: SET %s: attribute %q is not a map", u.p, u.p.Attr)
	}
	return nil
}
func (u updateSet) String() string { return fmt.Sprintf("SET %s = %s", u.p, u.v) }

func (u updateAdd) apply(it Item) error {
	cur, ok := it.Get(u.p)
	if ok && cur.Kind() != KindNumber && !cur.IsNull() {
		return fmt.Errorf("dynamo: ADD %s: attribute is %s, not a number", u.p, cur.Kind())
	}
	if !it.set(u.p, N(cur.Num()+u.d)) {
		return fmt.Errorf("dynamo: ADD %s: attribute %q is not a map", u.p, u.p.Attr)
	}
	return nil
}
func (u updateAdd) String() string { return fmt.Sprintf("ADD %s %v", u.p, u.d) }

func (u updateRemove) apply(it Item) error {
	it.remove(u.p)
	return nil
}
func (u updateRemove) String() string { return fmt.Sprintf("REMOVE %s", u.p) }

// UpdateKind discriminates the action of an UpdateDesc.
type UpdateKind uint8

// The update action kinds.
const (
	UpdateSet UpdateKind = iota + 1
	UpdateAdd
	UpdateRemove
)

// UpdateDesc is a serializable description of an Update action — the form
// storage backends that journal logical mutations (internal/walstore) write
// to disk and replay. Value carries the SET payload; Delta the ADD payload.
type UpdateDesc struct {
	Kind  UpdateKind
	Path  Path
	Value Value
	Delta float64
}

// DescribeUpdate decomposes an Update built by Set, Add or Remove into its
// serializable description. It reports false for foreign implementations.
func DescribeUpdate(u Update) (UpdateDesc, bool) {
	switch a := u.(type) {
	case updateSet:
		return UpdateDesc{Kind: UpdateSet, Path: a.p, Value: a.v}, true
	case updateAdd:
		return UpdateDesc{Kind: UpdateAdd, Path: a.p, Delta: a.d}, true
	case updateRemove:
		return UpdateDesc{Kind: UpdateRemove, Path: a.p}, true
	}
	return UpdateDesc{}, false
}

// UpdateFromDesc rebuilds the Update an UpdateDesc describes.
func UpdateFromDesc(d UpdateDesc) (Update, error) {
	switch d.Kind {
	case UpdateSet:
		return Set(d.Path, d.Value), nil
	case UpdateAdd:
		return Add(d.Path, d.Delta), nil
	case UpdateRemove:
		return Remove(d.Path), nil
	}
	return nil, fmt.Errorf("dynamo: UpdateFromDesc: unknown kind %d", d.Kind)
}
