// Package dynamo is an in-memory, linearizable NoSQL store modelled on the
// slice of DynamoDB that Beldi depends on (§2.2 of the paper): strongly
// consistent reads, atomic conditional updates scoped to a single row,
// query/scan with filtering and projection, local secondary indexes, a
// bounded item size (400 KB on DynamoDB), and multi-row transactions
// (DynamoDB's TransactWriteItems, used only by the cross-table-transaction
// comparator of §7.3).
//
// The store is deliberately server-free: it stands in for the managed
// database a stateful serverless function would call over the network. An
// injectable latency model recreates the round-trip cost structure that the
// paper's figures measure.
package dynamo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the dynamic type of a Value.
type Kind uint8

// The value kinds supported by the store. They mirror DynamoDB's attribute
// types (S, N, BOOL, B, L, M and NULL).
const (
	KindNull Kind = iota
	KindString
	KindNumber
	KindBool
	KindBytes
	KindList
	KindMap
)

// String returns the kind's name for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindString:
		return "S"
	case KindNumber:
		return "N"
	case KindBool:
		return "BOOL"
	case KindBytes:
		return "B"
	case KindList:
		return "L"
	case KindMap:
		return "M"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed attribute value. The zero Value is NULL.
// Values are immutable by convention: use Clone before mutating nested
// lists or maps obtained from the store.
type Value struct {
	kind  Kind
	str   string
	num   float64
	boolv bool
	bytes []byte
	list  []Value
	m     map[string]Value
}

// Null is the NULL value.
var Null = Value{}

// S returns a string value.
func S(s string) Value { return Value{kind: KindString, str: s} }

// N returns a number value. DynamoDB numbers are arbitrary-precision
// decimals; this store uses float64, which is exact for the integer ranges
// Beldi needs (step counters, timestamps in microseconds, ids).
func N(f float64) Value { return Value{kind: KindNumber, num: f} }

// NInt returns a number value from an int64.
func NInt(i int64) Value { return Value{kind: KindNumber, num: float64(i)} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, boolv: b} }

// Bytes returns a binary value. The slice is not copied.
func Bytes(b []byte) Value { return Value{kind: KindBytes, bytes: b} }

// L returns a list value. The slice is not copied.
func L(vs ...Value) Value { return Value{kind: KindList, list: vs} }

// M returns a map value. The map is not copied.
func M(m map[string]Value) Value { return Value{kind: KindMap, m: m} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload, or "" for non-strings.
func (v Value) Str() string { return v.str }

// Num returns the numeric payload, or 0 for non-numbers.
func (v Value) Num() float64 { return v.num }

// Int returns the numeric payload truncated to int64.
func (v Value) Int() int64 { return int64(v.num) }

// BoolVal returns the boolean payload, or false for non-booleans.
func (v Value) BoolVal() bool { return v.boolv }

// BytesVal returns the binary payload, or nil for non-binary values.
func (v Value) BytesVal() []byte { return v.bytes }

// List returns the list payload, or nil. The returned slice must not be
// mutated.
func (v Value) List() []Value { return v.list }

// Map returns the map payload, or nil. The returned map must not be mutated.
func (v Value) Map() map[string]Value { return v.m }

// MapGet looks up key in a map value, returning the entry and whether it
// exists. Returns (Null, false) for non-map values.
func (v Value) MapGet(key string) (Value, bool) {
	if v.kind != KindMap {
		return Null, false
	}
	e, ok := v.m[key]
	return e, ok
}

// MapLen returns the number of entries in a map value, or 0.
func (v Value) MapLen() int { return len(v.m) }

// Clone returns a deep copy of the value.
func (v Value) Clone() Value {
	switch v.kind {
	case KindBytes:
		b := make([]byte, len(v.bytes))
		copy(b, v.bytes)
		return Value{kind: KindBytes, bytes: b}
	case KindList:
		l := make([]Value, len(v.list))
		for i, e := range v.list {
			l[i] = e.Clone()
		}
		return Value{kind: KindList, list: l}
	case KindMap:
		m := make(map[string]Value, len(v.m))
		for k, e := range v.m {
			m[k] = e.Clone()
		}
		return Value{kind: KindMap, m: m}
	default:
		return v
	}
}

// Equal reports deep equality of two values. Values of different kinds are
// never equal (no numeric coercion).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.str == o.str
	case KindNumber:
		return v.num == o.num
	case KindBool:
		return v.boolv == o.boolv
	case KindBytes:
		return string(v.bytes) == string(o.bytes)
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(v.m) != len(o.m) {
			return false
		}
		for k, e := range v.m {
			oe, ok := o.m[k]
			if !ok || !e.Equal(oe) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders two values of the same scalar kind: -1, 0 or +1. Values of
// different kinds order by kind, matching how a sort key column with mixed
// types would be rejected by a real store but keeping ordering total here.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.str, o.str)
	case KindNumber:
		switch {
		case v.num < o.num:
			return -1
		case v.num > o.num:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case !v.boolv && o.boolv:
			return -1
		case v.boolv && !o.boolv:
			return 1
		}
		return 0
	case KindBytes:
		return strings.Compare(string(v.bytes), string(o.bytes))
	default:
		return 0
	}
}

// Size approximates the value's DynamoDB storage footprint in bytes: string
// and binary lengths, 8 bytes per number, 1 per bool/null, and 3 bytes of
// per-element overhead for containers (DynamoDB charges 3 bytes per list or
// map element plus 1 byte per nesting level; this approximation is close
// enough for the 400 KB row cap and the §7.3 storage accounting).
func (v Value) Size() int {
	switch v.kind {
	case KindNull, KindBool:
		return 1
	case KindString:
		return len(v.str)
	case KindNumber:
		return 8
	case KindBytes:
		return len(v.bytes)
	case KindList:
		n := 3
		for _, e := range v.list {
			n += 1 + e.Size()
		}
		return n
	case KindMap:
		n := 3
		for k, e := range v.m {
			n += len(k) + 1 + e.Size()
		}
		return n
	}
	return 1
}

// String renders the value for debugging.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindString:
		return strconv.Quote(v.str)
	case KindNumber:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.boolv)
	case KindBytes:
		return fmt.Sprintf("b%q", v.bytes)
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ",") + "]"
	case KindMap:
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s:%s", k, v.m[k])
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	return "?"
}
