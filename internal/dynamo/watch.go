package dynamo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Commit-stream watch: the store fans a notification out to subscribers
// whenever a write commits, so waiters (queue pollers, promise awaits) can
// block on event arrival instead of polling on timers — the Netherite
// commit-stream observation applied at the store seam. Events are wakeup
// hints, not a replicated log: a subscriber that receives one re-reads the
// table through the normal API, and delivery may coalesce under load (a full
// subscription buffer drops the event, which is safe precisely because an
// undelivered event in the buffer already guarantees a future wakeup).

// CommitEvent describes one committed write observed through a watch
// subscription.
type CommitEvent struct {
	// Table is the table the write committed to.
	Table string
	// Hash is the hash-key value of the committed row.
	Hash Value
	// Seq is the table's notification sequence number: ascending per table,
	// assigned in commit-notification order. Subscribers observe strictly
	// increasing Seq values.
	Seq uint64
}

// DefaultWatchBuffer is the per-subscription event buffer. When a
// subscriber lags this far behind, further events are coalesced into the
// wakeups already pending (see WatchDrops in Metrics).
const DefaultWatchBuffer = 64

// Subscription is the backend-independent handle on a commit stream; it
// lives here with the rest of the shared data model and is re-exported by
// the storage seam. Every backend's Watch returns one.
type Subscription interface {
	// Events returns the delivery channel; closed when the subscription is
	// closed or its transport is lost.
	Events() <-chan CommitEvent
	// Wait blocks until an event arrives (consuming it, true), d elapses,
	// cancel fires, or the subscription closes (false). A nil cancel never
	// fires.
	Wait(d time.Duration, cancel <-chan struct{}) bool
	// Close tears the subscription down; idempotent.
	Close()
}

// WatchSub is a live subscription to a table's commit stream, the concrete
// Subscription of hub-based backends (memory store, walstore, the remote
// server's per-connection pushers).
type WatchSub struct {
	hub    *WatchHub
	table  string
	hash   Value // Null means the whole table
	wide   bool
	ch     chan CommitEvent
	closed bool // guarded by hub.mu
}

// Events returns the subscription's delivery channel. It is closed when the
// subscription is closed; events may be coalesced (dropped) when the buffer
// is full, so treat delivery as a wakeup hint and re-read the table.
func (w *WatchSub) Events() <-chan CommitEvent { return w.ch }

// Wait blocks until an event arrives (consuming it and returning true), the
// duration elapses, or cancel fires (returning false). A nil cancel never
// fires. Pending events are consumed without blocking. A closed subscription
// waits out the full duration like a backend without push — so retry loops
// built on Wait keep their poll cadence instead of spinning.
func (w *WatchSub) Wait(d time.Duration, cancel <-chan struct{}) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	ch := w.ch
	for {
		select {
		case _, ok := <-ch:
			if ok {
				return true
			}
			ch = nil // closed: degrade to the plain timer
		case <-timer.C:
			return false
		case <-cancel:
			return false
		}
	}
}

// Close tears the subscription down and closes its Events channel. Close is
// idempotent.
func (w *WatchSub) Close() { w.hub.unsubscribe(w) }

// String describes the subscription.
func (w *WatchSub) String() string {
	if w.wide {
		return fmt.Sprintf("watch(%s)", w.table)
	}
	return fmt.Sprintf("watch(%s/%s)", w.table, w.hash)
}

// WatchHub is the fan-out registry a backend notifies from its commit path:
// per-table subscriber lists and notification sequences. The memory store
// owns one and notifies when a write's group-commit batch completes;
// walstore owns its own and notifies only after the fsync that made the
// write durable (its memtable's hub stays silent — watchers of a durable
// backend must never wake ahead of durability).
type WatchHub struct {
	mu   sync.Mutex
	n    atomic.Int64 // live subscriptions; the no-subscriber fast path
	seq  map[string]uint64
	subs map[string][]*WatchSub

	metrics *Metrics
}

// NewWatchHub creates a hub; m (optional) receives the hub's counters.
func NewWatchHub(m *Metrics) *WatchHub { return &WatchHub{metrics: m} }

// Active reports whether any subscription is live — commit paths use it to
// skip notification work entirely when nobody watches.
func (h *WatchHub) Active() bool { return h.n.Load() > 0 }

// Subscribe registers a subscription on table; a Null hash watches every
// partition. Registration is complete when Subscribe returns.
func (h *WatchHub) Subscribe(table string, hash Value) *WatchSub {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seq == nil {
		h.seq = make(map[string]uint64)
		h.subs = make(map[string][]*WatchSub)
	}
	w := &WatchSub{
		hub:   h,
		table: table,
		hash:  hash,
		wide:  hash.IsNull(),
		ch:    make(chan CommitEvent, DefaultWatchBuffer),
	}
	h.subs[table] = append(h.subs[table], w)
	h.n.Add(1)
	if h.metrics != nil {
		h.metrics.WatchSubs.Add(1)
	}
	return w
}

func (h *WatchHub) unsubscribe(w *WatchSub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	list := h.subs[w.table]
	for i, s := range list {
		if s == w {
			h.subs[w.table] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	close(w.ch)
	h.n.Add(-1)
	if h.metrics != nil {
		h.metrics.WatchSubs.Add(-1)
	}
}

// Notify publishes one committed write on table to every matching
// subscription. Sends never block: a full buffer coalesces the event into
// the subscriber's already-pending wakeups. Call it only after the write is
// observable through the backend's read path (and durable, for backends
// that promise durability at write return).
func (h *WatchHub) Notify(table string, hash Value) {
	if !h.Active() {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	list := h.subs[table]
	if len(list) == 0 {
		return
	}
	h.seq[table]++
	ev := CommitEvent{Table: table, Hash: hash, Seq: h.seq[table]}
	for _, w := range list {
		if !w.wide && !w.hash.Equal(hash) {
			continue
		}
		select {
		case w.ch <- ev:
			if h.metrics != nil {
				h.metrics.WatchNotifies.Add(1)
			}
		default:
			if h.metrics != nil {
				h.metrics.WatchDrops.Add(1)
			}
		}
	}
}

// CloseAll closes every live subscription (backend shutdown, connection
// teardown on the remote server).
func (h *WatchHub) CloseAll() {
	h.mu.Lock()
	var all []*WatchSub
	for _, list := range h.subs {
		all = append(all, list...)
	}
	h.mu.Unlock()
	for _, w := range all {
		h.unsubscribe(w)
	}
}

// Watch subscribes to table's commit stream. A Null hash watches every
// partition; otherwise only commits to rows whose hash-key value equals
// hash are delivered. The subscription is registered before Watch returns:
// every write that commits after the call produces a wakeup (subject to
// buffer coalescing). Writes that committed before the call do not — do an
// initial read after subscribing.
func (s *Store) Watch(table string, hash Value) (Subscription, error) {
	if _, err := s.table(table); err != nil {
		return nil, err
	}
	return s.watch.Subscribe(table, hash), nil
}

// notifyCommit publishes one committed single-row write; called by the
// write paths after the apply (and its group-commit batch) completes.
func (s *Store) notifyCommit(table string, hash Value) {
	s.watch.Notify(table, hash)
}
