package dynamo

import "testing"

func TestCondExists(t *testing.T) {
	it := Item{"A": N(1), "M": M(map[string]Value{"k": Null})}
	if !Exists(A("A")).Eval(it) {
		t.Error("Exists(A) false")
	}
	if Exists(A("B")).Eval(it) {
		t.Error("Exists(B) true")
	}
	if !Exists(AK("M", "k")).Eval(it) {
		t.Error("Exists(M.k) false — NULL entries still exist")
	}
	if Exists(AK("M", "z")).Eval(it) {
		t.Error("Exists(M.z) true")
	}
	if !NotExists(A("B")).Eval(it) || NotExists(A("A")).Eval(it) {
		t.Error("NotExists misbehaves")
	}
}

func TestCondComparisons(t *testing.T) {
	it := Item{"N": N(5), "S": S("m")}
	cases := []struct {
		c    Cond
		want bool
	}{
		{Eq(A("N"), N(5)), true},
		{Eq(A("N"), N(6)), false},
		{Eq(A("missing"), N(5)), false},
		{Ne(A("N"), N(6)), true},
		{Ne(A("missing"), N(6)), true}, // vacuous
		{Lt(A("N"), N(6)), true},
		{Lt(A("N"), N(5)), false},
		{Le(A("N"), N(5)), true},
		{Gt(A("N"), N(4)), true},
		{Ge(A("N"), N(5)), true},
		{Lt(A("missing"), N(100)), false},
		{Gt(A("S"), S("a")), true},
	}
	for _, c := range cases {
		if got := c.c.Eval(it); got != c.want {
			t.Errorf("%s = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestCondBoolean(t *testing.T) {
	it := Item{"A": N(1)}
	if !And(Eq(A("A"), N(1)), Exists(A("A"))).Eval(it) {
		t.Error("And false")
	}
	if And(Eq(A("A"), N(1)), Exists(A("B"))).Eval(it) {
		t.Error("And true with failing leg")
	}
	if !And().Eval(it) {
		t.Error("empty And should be true")
	}
	if !Or(Eq(A("A"), N(2)), Eq(A("A"), N(1))).Eval(it) {
		t.Error("Or false")
	}
	if Or().Eval(it) {
		t.Error("empty Or should be false")
	}
	if Not(True()).Eval(it) {
		t.Error("Not(True) true")
	}
	if !True().Eval(nil) {
		t.Error("True false")
	}
}

func TestCondIsNullOr(t *testing.T) {
	// The Beldi lock condition: lock is free (missing or NULL) or already
	// held by this transaction.
	lockFree := IsNullOr(A("LockOwner"), Eq(AK("LockOwner", "Id"), S("tx1")))
	if !lockFree.Eval(Item{}) {
		t.Error("missing owner should pass")
	}
	if !lockFree.Eval(Item{"LockOwner": Null}) {
		t.Error("NULL owner should pass")
	}
	if !lockFree.Eval(Item{"LockOwner": M(map[string]Value{"Id": S("tx1")})}) {
		t.Error("own lock should pass")
	}
	if lockFree.Eval(Item{"LockOwner": M(map[string]Value{"Id": S("tx2")})}) {
		t.Error("other's lock should fail")
	}
}

func TestCondStrings(t *testing.T) {
	// String rendering shouldn't panic and should mention the path.
	conds := []Cond{
		Exists(A("X")), NotExists(AK("M", "k")), Eq(A("X"), N(1)),
		And(True(), Not(True())), Or(Lt(A("X"), N(2))),
	}
	for _, c := range conds {
		if c.String() == "" {
			t.Errorf("%T renders empty", c)
		}
	}
}

func TestUpdateSet(t *testing.T) {
	it := Item{}
	if err := Set(A("V"), S("x")).apply(it); err != nil {
		t.Fatal(err)
	}
	if v, _ := it.Get(A("V")); v.Str() != "x" {
		t.Errorf("V = %v", v)
	}
	if err := Set(AK("Log", "k"), Bool(true)).apply(it); err != nil {
		t.Fatal(err)
	}
	if v, ok := it.Get(AK("Log", "k")); !ok || !v.BoolVal() {
		t.Errorf("Log.k = %v %v", v, ok)
	}
	if err := Set(AK("V", "k"), N(1)).apply(it); err == nil {
		t.Error("Set through scalar should error")
	}
}

func TestUpdateAdd(t *testing.T) {
	it := Item{"N": N(5)}
	if err := Add(A("N"), 3).apply(it); err != nil {
		t.Fatal(err)
	}
	if v, _ := it.Get(A("N")); v.Num() != 8 {
		t.Errorf("N = %v", v)
	}
	// Missing attribute treated as zero.
	if err := Add(A("M"), 2).apply(it); err != nil {
		t.Fatal(err)
	}
	if v, _ := it.Get(A("M")); v.Num() != 2 {
		t.Errorf("M = %v", v)
	}
	if err := Add(A("S"), 1).apply(Item{"S": S("x")}); err == nil {
		t.Error("Add to string should error")
	}
}

func TestUpdateRemove(t *testing.T) {
	it := Item{"A": N(1), "M": M(map[string]Value{"k": N(2), "j": N(3)})}
	if err := Remove(A("A")).apply(it); err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Get(A("A")); ok {
		t.Error("A survived")
	}
	if err := Remove(AK("M", "k")).apply(it); err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Get(AK("M", "k")); ok {
		t.Error("M.k survived")
	}
	if v, ok := it.Get(AK("M", "j")); !ok || v.Num() != 3 {
		t.Error("M.j damaged")
	}
}
