package dynamo

import "fmt"

// CondKind discriminates the node type of a CondDesc tree.
type CondKind uint8

// The condition node kinds.
const (
	CondTrue CondKind = iota + 1
	CondExists
	CondNotExists
	CondCmp
	CondAnd
	CondOr
	CondNot
)

// CondDesc is a serializable description of a Cond expression tree — the
// form wire protocols (internal/remote) and journaling backends ship
// conditions in. Path/Op/Value carry a comparison or existence test; Subs
// carries the children of And/Or/Not.
type CondDesc struct {
	Kind  CondKind
	Path  Path
	Op    string // CondCmp: "=", "!=", "<", "<=", ">", ">="
	Value Value
	Subs  []CondDesc
}

// DescribeCond decomposes a Cond built by this package's constructors
// (Exists, NotExists, Eq/Ne/Lt/Le/Gt/Ge, And, Or, Not, True, IsNullOr) into
// its serializable description. It reports false for foreign Cond
// implementations, which cannot cross a serialization boundary.
func DescribeCond(c Cond) (CondDesc, bool) {
	switch v := c.(type) {
	case condTrue:
		return CondDesc{Kind: CondTrue}, true
	case condExists:
		return CondDesc{Kind: CondExists, Path: v.p}, true
	case condNotExists:
		return CondDesc{Kind: CondNotExists, Path: v.p}, true
	case condCmp:
		return CondDesc{Kind: CondCmp, Path: v.p, Op: v.op, Value: v.v}, true
	case condAnd:
		subs, ok := describeConds(v.cs)
		return CondDesc{Kind: CondAnd, Subs: subs}, ok
	case condOr:
		subs, ok := describeConds(v.cs)
		return CondDesc{Kind: CondOr, Subs: subs}, ok
	case condNot:
		sub, ok := DescribeCond(v.c)
		return CondDesc{Kind: CondNot, Subs: []CondDesc{sub}}, ok
	}
	return CondDesc{}, false
}

func describeConds(cs []Cond) ([]CondDesc, bool) {
	out := make([]CondDesc, len(cs))
	for i, c := range cs {
		d, ok := DescribeCond(c)
		if !ok {
			return nil, false
		}
		out[i] = d
	}
	return out, true
}

// CondFromDesc rebuilds the Cond a CondDesc describes.
func CondFromDesc(d CondDesc) (Cond, error) {
	switch d.Kind {
	case CondTrue:
		return True(), nil
	case CondExists:
		return Exists(d.Path), nil
	case CondNotExists:
		return NotExists(d.Path), nil
	case CondCmp:
		switch d.Op {
		case "=", "!=", "<", "<=", ">", ">=":
			return condCmp{d.Path, d.Op, d.Value}, nil
		}
		return nil, fmt.Errorf("dynamo: CondFromDesc: unknown comparison op %q", d.Op)
	case CondAnd, CondOr:
		subs, err := condsFromDescs(d.Subs)
		if err != nil {
			return nil, err
		}
		if d.Kind == CondAnd {
			return And(subs...), nil
		}
		return Or(subs...), nil
	case CondNot:
		if len(d.Subs) != 1 {
			return nil, fmt.Errorf("dynamo: CondFromDesc: NOT wants 1 child, got %d", len(d.Subs))
		}
		sub, err := CondFromDesc(d.Subs[0])
		if err != nil {
			return nil, err
		}
		return Not(sub), nil
	}
	return nil, fmt.Errorf("dynamo: CondFromDesc: unknown kind %d", d.Kind)
}

func condsFromDescs(ds []CondDesc) ([]Cond, error) {
	out := make([]Cond, len(ds))
	for i, d := range ds {
		c, err := CondFromDesc(d)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}
