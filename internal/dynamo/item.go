package dynamo

import (
	"sort"
	"strings"
)

// Item is a row: a set of named attributes. The map itself is the unit the
// store clones at its boundary, so callers may mutate items they receive.
type Item map[string]Value

// Clone deep-copies the item.
func (it Item) Clone() Item {
	if it == nil {
		return nil
	}
	out := make(Item, len(it))
	for k, v := range it {
		out[k] = v.Clone()
	}
	return out
}

// Get returns the attribute at path. A path is either a bare attribute name
// or an attribute plus a map key (see Path).
func (it Item) Get(p Path) (Value, bool) {
	v, ok := it[p.Attr]
	if !ok {
		return Null, false
	}
	if p.MapKey == "" {
		return v, true
	}
	return v.MapGet(p.MapKey)
}

// Size approximates the item's DynamoDB storage footprint: the sum over
// attributes of name length plus value size.
func (it Item) Size() int {
	n := 0
	for k, v := range it {
		n += len(k) + v.Size()
	}
	return n
}

// String renders the item with sorted attribute names, for debugging and
// deterministic test output.
func (it Item) String() string {
	keys := make([]string, 0, len(it))
	for k := range it {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(it[k].String())
	}
	b.WriteByte('}')
	return b.String()
}

// Path addresses an attribute, optionally descending one level into a map
// attribute (Beldi's linked DAAL stores its per-row write log as a map
// attribute keyed by "instanceID.step", so one level is all the protocols
// need).
type Path struct {
	Attr   string
	MapKey string
}

// A returns a path to a top-level attribute.
func A(attr string) Path { return Path{Attr: attr} }

// AK returns a path to an entry of a map attribute.
func AK(attr, key string) Path { return Path{Attr: attr, MapKey: key} }

// String renders the path for diagnostics.
func (p Path) String() string {
	if p.MapKey == "" {
		return p.Attr
	}
	return p.Attr + "." + p.MapKey
}

// set stores v at path inside the item, materialising the intermediate map
// if needed. It returns false if the path descends into a non-map attribute.
func (it Item) set(p Path, v Value) bool {
	if p.MapKey == "" {
		it[p.Attr] = v
		return true
	}
	cur, ok := it[p.Attr]
	if !ok || cur.IsNull() {
		it[p.Attr] = M(map[string]Value{p.MapKey: v})
		return true
	}
	if cur.Kind() != KindMap {
		return false
	}
	// Copy-on-write so aliased values held by readers stay immutable.
	m := make(map[string]Value, len(cur.m)+1)
	for k, e := range cur.m {
		m[k] = e
	}
	m[p.MapKey] = v
	it[p.Attr] = M(m)
	return true
}

// remove deletes the attribute or map entry at path. Removing a missing
// path is a no-op, matching DynamoDB's REMOVE action.
func (it Item) remove(p Path) {
	if p.MapKey == "" {
		delete(it, p.Attr)
		return
	}
	cur, ok := it[p.Attr]
	if !ok || cur.Kind() != KindMap {
		return
	}
	if _, exists := cur.m[p.MapKey]; !exists {
		return
	}
	m := make(map[string]Value, len(cur.m))
	for k, e := range cur.m {
		if k != p.MapKey {
			m[k] = e
		}
	}
	it[p.Attr] = M(m)
}
