package dynamo

import "sync/atomic"

// Metrics counts store traffic. All fields are updated atomically and may be
// read while the store is live. BytesRead counts projected response bytes
// (what §7.3 of the paper calls network overhead "measured at the network
// layer"); BytesWritten counts request payload bytes.
type Metrics struct {
	Ops          [opKinds]atomic.Int64
	CondFailures atomic.Int64
	ItemsScanned atomic.Int64
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
	// GroupCommits counts committed batches on the group-commit path;
	// GroupCommitOps counts the writes they carried. Their ratio is the mean
	// batch size — the amortization factor the ShardSweep figure reports.
	GroupCommits   atomic.Int64
	GroupCommitOps atomic.Int64
	// WatchSubs is the number of live commit-stream subscriptions;
	// WatchNotifies counts events delivered to subscribers and WatchDrops
	// counts events coalesced into a full subscription buffer (the
	// subscriber already has a pending wakeup, so nothing is lost).
	WatchSubs     atomic.Int64
	WatchNotifies atomic.Int64
	WatchDrops    atomic.Int64
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Ops            map[string]int64
	CondFailures   int64
	ItemsScanned   int64
	BytesRead      int64
	BytesWritten   int64
	GroupCommits   int64
	GroupCommitOps int64
	WatchSubs      int64
	WatchNotifies  int64
	WatchDrops     int64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{Ops: make(map[string]int64, int(opKinds))}
	for k := OpKind(0); k < opKinds; k++ {
		s.Ops[k.String()] = m.Ops[k].Load()
	}
	s.CondFailures = m.CondFailures.Load()
	s.ItemsScanned = m.ItemsScanned.Load()
	s.BytesRead = m.BytesRead.Load()
	s.BytesWritten = m.BytesWritten.Load()
	s.GroupCommits = m.GroupCommits.Load()
	s.GroupCommitOps = m.GroupCommitOps.Load()
	s.WatchSubs = m.WatchSubs.Load()
	s.WatchNotifies = m.WatchNotifies.Load()
	s.WatchDrops = m.WatchDrops.Load()
	return s
}

// Sub returns s - o, counter-wise, for measuring an interval.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	d := Snapshot{Ops: make(map[string]int64, len(s.Ops))}
	for k, v := range s.Ops {
		d.Ops[k] = v - o.Ops[k]
	}
	d.CondFailures = s.CondFailures - o.CondFailures
	d.ItemsScanned = s.ItemsScanned - o.ItemsScanned
	d.BytesRead = s.BytesRead - o.BytesRead
	d.BytesWritten = s.BytesWritten - o.BytesWritten
	d.GroupCommits = s.GroupCommits - o.GroupCommits
	d.GroupCommitOps = s.GroupCommitOps - o.GroupCommitOps
	d.WatchSubs = s.WatchSubs - o.WatchSubs
	d.WatchNotifies = s.WatchNotifies - o.WatchNotifies
	d.WatchDrops = s.WatchDrops - o.WatchDrops
	return d
}

// TotalOps sums all op counters.
func (s Snapshot) TotalOps() int64 {
	var n int64
	for _, v := range s.Ops {
		n += v
	}
	return n
}
