package dynamo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store is the in-memory NoSQL service. It is safe for concurrent use; each
// operation is linearizable, and conditional updates are atomic within a
// row, which is the atomicity scope Beldi assumes of DynamoDB (§2.2).
//
// Internally each table's partitions are hash-distributed across a number
// of lock-striped shards (WithShards / Schema.Shards; default 1, the seed's
// single-latch behavior), and conditional writes landing on the same shard
// can be coalesced into group-commit batches (WithGroupCommit) — the
// Netherite-style substrate shape that removes the global lock from Beldi's
// hot logging path. See ARCHITECTURE.md.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*table

	defaultShards int
	groupCommit   atomic.Bool

	latency LatencyModel
	metrics Metrics
	watch   *WatchHub
}

// Option configures a Store.
type Option func(*Store)

// WithLatency installs a latency model; the default is ZeroLatency.
func WithLatency(m LatencyModel) Option {
	return func(s *Store) { s.latency = m }
}

// WithShards sets the default shard count for tables created without an
// explicit Schema.Shards. 1 (the default) reproduces the seed's
// one-latch-per-table behavior exactly.
func WithShards(n int) Option {
	return func(s *Store) {
		if n >= 1 {
			s.defaultShards = n
		}
	}
}

// WithGroupCommit enables the per-shard group-commit path at construction
// time (see SetGroupCommit).
func WithGroupCommit(on bool) Option {
	return func(s *Store) { s.groupCommit.Store(on) }
}

// NewStore creates an empty store.
func NewStore(opts ...Option) *Store {
	s := &Store{
		tables:        make(map[string]*table),
		latency:       ZeroLatency{},
		defaultShards: DefaultShards,
	}
	s.watch = NewWatchHub(&s.metrics)
	for _, o := range opts {
		o(s)
	}
	return s
}

// Metrics exposes the store's traffic counters.
func (s *Store) Metrics() *Metrics { return &s.metrics }

// SetLatency swaps the latency model (benchmarks flip between zero and
// cloud-shaped latency on a shared store).
func (s *Store) SetLatency(m LatencyModel) {
	s.mu.Lock()
	s.latency = m
	s.mu.Unlock()
}

// ModelCommitLatency reports what the installed latency model charges, while
// the owning shard's write latch is held, for committing a batch of ops
// operations — the same per-batch cost TransactWrite pays once inside its
// critical section (see shard.commitSleep). It returns 0 when the model does
// not implement CommitLatencyModel. Commit-pipelining layers use this to
// attribute modeled flush time to their batches so simulated and wall-clock
// sweeps agree on batch-size amortization.
func (s *Store) ModelCommitLatency(ops int) time.Duration {
	if m, ok := s.lat().(CommitLatencyModel); ok {
		return m.CommitLatency(ops)
	}
	return 0
}

// SetGroupCommit toggles the group-commit write path: when on, conditional
// writes landing on the same shard while a batch is in flight are applied
// together inside one critical section, amortizing the latch acquisition and
// the commit flush. Each batched op still evaluates its own condition
// against the then-current row, so observable semantics are unchanged.
func (s *Store) SetGroupCommit(on bool) { s.groupCommit.Store(on) }

// GroupCommitEnabled reports whether the group-commit path is on.
func (s *Store) GroupCommitEnabled() bool { return s.groupCommit.Load() }

// DefaultShards returns the store's default per-table shard count.
func (s *Store) DefaultShards() int { return s.defaultShards }

// TableShards reports the shard count of an existing table.
func (s *Store) TableShards(name string) (int, error) {
	t, err := s.table(name)
	if err != nil {
		return 0, err
	}
	return len(t.shards), nil
}

// TableSchema returns the schema of an existing table, with Shards set to
// the effective stripe count (the layout is fixed at creation, so a schema
// created with Shards=0 reports the default it resolved to).
func (s *Store) TableSchema(name string) (Schema, error) {
	t, err := s.table(name)
	if err != nil {
		return Schema{}, err
	}
	sch := t.schema
	sch.Shards = len(t.shards)
	sch.Indexes = append([]IndexSchema(nil), t.schema.Indexes...)
	return sch, nil
}

// CreateTable registers a new table.
func (s *Store) CreateTable(schema Schema) error {
	if schema.Name == "" || schema.HashKey == "" {
		return fmt.Errorf("dynamo: CreateTable: name and hash key are required")
	}
	if schema.Shards < 0 {
		return fmt.Errorf("dynamo: CreateTable: negative shard count %d", schema.Shards)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[schema.Name]; ok {
		return fmt.Errorf("%w: %s", ErrTableExists, schema.Name)
	}
	s.tables[schema.Name] = newTable(schema, s.defaultShards)
	return nil
}

// MustCreateTable is CreateTable, panicking on error; for setup code.
func (s *Store) MustCreateTable(schema Schema) {
	if err := s.CreateTable(schema); err != nil {
		panic(err)
	}
}

// DeleteTable drops a table and its data.
func (s *Store) DeleteTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	delete(s.tables, name)
	return nil
}

func (s *Store) table(name string) (*table, error) {
	s.mu.RLock()
	t, ok := s.tables[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return t, nil
}

func (s *Store) lat() LatencyModel {
	s.mu.RLock()
	m := s.latency
	s.mu.RUnlock()
	return m
}

func (s *Store) charge(op OpKind, items, bytes int) {
	s.metrics.Ops[op].Add(1)
	s.metrics.BytesRead.Add(int64(bytes))
	if d := s.lat().OpLatency(op, items, bytes); d > 0 {
		sleep(d)
	}
}

// Get returns a deep copy of the item at key (strongly consistent read).
func (s *Store) Get(tableName string, key Key) (Item, bool, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, false, err
	}
	sh := t.shardOf(key)
	sh.mu.RLock()
	it := sh.get(key)
	var out Item
	if it != nil {
		out = it.Clone()
	}
	sh.mu.RUnlock()
	bytes := 0
	if out != nil {
		bytes = out.Size()
	}
	s.charge(OpGet, 1, bytes)
	return out, out != nil, nil
}

// GetProj is Get with a projection applied server-side, so only the
// projected bytes count as response traffic.
func (s *Store) GetProj(tableName string, key Key, proj []Path) (Item, bool, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, false, err
	}
	sh := t.shardOf(key)
	sh.mu.RLock()
	it := sh.get(key)
	var out Item
	if it != nil {
		out = project(it, proj)
	}
	sh.mu.RUnlock()
	bytes := 0
	if out != nil {
		bytes = out.Size()
	}
	s.charge(OpGet, 1, bytes)
	return out, out != nil, nil
}

// Put installs item, replacing any existing row, if cond holds against the
// current row (or against the absent row). A nil cond always passes.
func (s *Store) Put(tableName string, item Item, cond Cond) error {
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	key, err := t.keyOf(item)
	if err != nil {
		return err
	}
	if item.Size() > t.maxSize {
		return fmt.Errorf("%w: table %s key %s (%d bytes)", ErrItemTooLarge, tableName, key, item.Size())
	}
	stored := item.Clone()
	sh := t.shardOf(key)
	var applyErr error
	s.applyWrite(sh, func() {
		cur := sh.get(key)
		if cond != nil && !evalAgainst(cond, cur) {
			applyErr = condFailure(tableName, key, cond)
			return
		}
		sh.put(key, stored)
	})
	if applyErr != nil {
		s.metrics.CondFailures.Add(1)
		s.charge(OpPut, 1, 0)
		return applyErr
	}
	s.metrics.BytesWritten.Add(int64(stored.Size()))
	s.notifyCommit(tableName, key.Hash)
	s.charge(OpPut, 1, 0)
	return nil
}

// Update applies the update actions to the row at key if cond holds. Like
// DynamoDB's UpdateItem it upserts: a missing row is created (with just the
// key attributes) before the updates run, provided the condition passes
// against the absent row. Returns ErrConditionFailed when the condition is
// false and ErrItemTooLarge when the result would exceed the row cap (the
// row is left unchanged in both cases).
func (s *Store) Update(tableName string, key Key, cond Cond, updates ...Update) error {
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	sh := t.shardOf(key)
	var applyErr error
	var condFailed bool
	var written int
	s.applyWrite(sh, func() {
		cur := sh.get(key)
		if cond != nil && !evalAgainst(cond, cur) {
			applyErr = condFailure(tableName, key, cond)
			condFailed = true
			return
		}
		next := t.materialize(cur, key)
		for _, u := range updates {
			if applyErr = u.apply(next); applyErr != nil {
				return
			}
		}
		if next.Size() > t.maxSize {
			applyErr = fmt.Errorf("%w: table %s key %s (%d bytes)", ErrItemTooLarge, tableName, key, next.Size())
			return
		}
		sh.put(key, next)
		written = next.Size()
	})
	if applyErr != nil {
		if condFailed {
			s.metrics.CondFailures.Add(1)
		}
		s.charge(OpUpdate, 1, 0)
		return applyErr
	}
	s.metrics.BytesWritten.Add(int64(written))
	s.notifyCommit(tableName, key.Hash)
	s.charge(OpUpdate, 1, 0)
	return nil
}

// Delete removes the row at key if cond holds. Deleting an absent row with a
// passing condition is a no-op, matching DynamoDB.
func (s *Store) Delete(tableName string, key Key, cond Cond) error {
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	sh := t.shardOf(key)
	var applyErr error
	s.applyWrite(sh, func() {
		cur := sh.get(key)
		if cond != nil && !evalAgainst(cond, cur) {
			applyErr = condFailure(tableName, key, cond)
			return
		}
		sh.delete(key)
	})
	if applyErr != nil {
		s.metrics.CondFailures.Add(1)
		s.charge(OpDelete, 1, 0)
		return applyErr
	}
	s.notifyCommit(tableName, key.Hash)
	s.charge(OpDelete, 1, 0)
	return nil
}

// QueryOpts shape a Query or index Query.
type QueryOpts struct {
	// Filter drops non-matching rows after key selection (charged as
	// scanned, like DynamoDB filter expressions).
	Filter Cond
	// Projection trims each returned row; nil returns whole rows.
	Projection []Path
	// Limit caps returned rows; 0 means unlimited.
	Limit int
	// Descending reverses sort-key order.
	Descending bool
}

// Query returns the rows of one partition in sort-key order, filtered and
// projected. The result is a consistent snapshot. A partition lives entirely
// on one shard, so only that shard's lock is taken.
func (s *Store) Query(tableName string, hash Value, opts QueryOpts) ([]Item, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	hk := encodeScalar(hash)
	sh := t.shardFor(hk)
	sh.mu.RLock()
	p := sh.parts[hk]
	var rows []*row
	if p != nil {
		rows = append(rows, p.rows...)
	}
	out, scanned, bytes := filterRows(rows, opts)
	sh.mu.RUnlock()
	s.metrics.ItemsScanned.Add(int64(scanned))
	s.charge(OpQuery, scanned, bytes)
	return out, nil
}

// QueryIndex queries a secondary index by its hash attribute. Results are
// ordered by the index sort attribute (or primary key order when the index
// has none). The snapshot spans every shard.
func (s *Store) QueryIndex(tableName, indexName string, hash Value, opts QueryOpts) ([]Item, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	ix, ok := t.findIndex(indexName)
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSuchIndex, tableName, indexName)
	}
	t.rlockAll()
	var matched []*row
	for _, hk := range t.sortedHashKeys() {
		for _, r := range t.partFor(hk).rows {
			v, has := r.item[ix.HashKey]
			if has && v.Equal(hash) {
				matched = append(matched, r)
			}
		}
	}
	if ix.SortKey != "" {
		sort.SliceStable(matched, func(i, j int) bool {
			vi := matched[i].item[ix.SortKey]
			vj := matched[j].item[ix.SortKey]
			return vi.Compare(vj) < 0
		})
	}
	out, scanned, bytes := filterRows(matched, opts)
	t.runlockAll()
	s.metrics.ItemsScanned.Add(int64(scanned))
	s.charge(OpQuery, scanned, bytes)
	return out, nil
}

// Scan walks the whole table in deterministic partition order. The result is
// a consistent snapshot (all shard read locks are held for its duration).
func (s *Store) Scan(tableName string, opts QueryOpts) ([]Item, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	t.rlockAll()
	var rows []*row
	for _, hk := range t.sortedHashKeys() {
		rows = append(rows, t.partFor(hk).rows...)
	}
	out, scanned, bytes := filterRows(rows, opts)
	t.runlockAll()
	s.metrics.ItemsScanned.Add(int64(scanned))
	s.charge(OpScan, scanned, bytes)
	return out, nil
}

// TableBytes reports the table's current storage footprint (for the §7.3
// storage-overhead accounting).
func (s *Store) TableBytes(tableName string) (int, error) {
	t, err := s.table(tableName)
	if err != nil {
		return 0, err
	}
	t.rlockAll()
	defer t.runlockAll()
	return t.bytes(), nil
}

// TableItemCount reports the number of live rows.
func (s *Store) TableItemCount(tableName string) (int, error) {
	t, err := s.table(tableName)
	if err != nil {
		return 0, err
	}
	t.rlockAll()
	defer t.runlockAll()
	return t.itemCount(), nil
}

// TableNames lists tables in sorted order.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// materialize returns a mutable copy of cur, or a fresh item carrying just
// the key attributes when cur is nil (upsert). Caller holds the owning
// shard's lock.
func (t *table) materialize(cur Item, key Key) Item {
	if cur != nil {
		return cur.Clone()
	}
	it := Item{t.schema.HashKey: key.Hash}
	if t.schema.SortKey != "" {
		it[t.schema.SortKey] = key.Sort
	}
	return it
}

// evalAgainst evaluates cond against a possibly-nil current row; conditions
// against absent rows see an empty item, so attribute_not_exists passes.
func evalAgainst(c Cond, cur Item) bool {
	if cur == nil {
		return c.Eval(Item{})
	}
	return c.Eval(cur)
}

func condFailure(table string, key Key, c Cond) error {
	return fmt.Errorf("%w: table %s key %s: %s", ErrConditionFailed, table, key, c)
}

// filterRows applies filter, projection and limit, returning projected
// copies plus the scanned-row count and response byte total.
func filterRows(rows []*row, opts QueryOpts) (out []Item, scanned, bytes int) {
	if opts.Descending {
		rev := make([]*row, len(rows))
		for i, r := range rows {
			rev[len(rows)-1-i] = r
		}
		rows = rev
	}
	for _, r := range rows {
		scanned++
		if opts.Filter != nil && !opts.Filter.Eval(r.item) {
			continue
		}
		p := project(r.item, opts.Projection)
		bytes += p.Size()
		out = append(out, p)
		if opts.Limit > 0 && len(out) >= opts.Limit {
			break
		}
	}
	return out, scanned, bytes
}
