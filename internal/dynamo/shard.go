package dynamo

import "sync"

// This file implements the store's intra-table sharding and the per-shard
// group-commit path. A table's rows are hash-partitioned across Shards
// lock-striped shards, so writes to different shards never contend; writes
// landing on the same shard can additionally be coalesced by a group-commit
// batcher that applies a whole queue of conditional writes inside one
// critical section (one latch acquisition, one flush), the way Netherite
// batches speculative commits per partition. Each operation in a batch still
// evaluates its own condition against the then-current row, so per-key
// conditional semantics are exactly those of the unbatched path.

// DefaultShards is the store-wide default shard count per table. The default
// of 1 preserves the seed's single-latch behavior (and its whole-table
// consistent snapshots) exactly; deployments opt into striping per store
// (WithShards) or per table (Schema.Shards).
const DefaultShards = 1

// shardIndex maps an encoded hash key to a shard by FNV-1a. All rows of one
// partition (same hash key) land on the same shard, so Query sees a
// consistent partition snapshot holding a single shard lock.
func shardIndex(encodedHash string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(encodedHash); i++ {
		h ^= uint32(encodedHash[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// shard is one lock stripe of a table: a private partition map under its own
// RWMutex, plus the group-commit queue for writes routed to this stripe.
type shard struct {
	mu    sync.RWMutex
	parts map[string]*partition

	gc committer
}

// committer is a shard's group-commit state: a queue of pending write
// closures and a leader flag. The first writer to find the shard idle
// becomes the leader, drains the queue in one critical section, and wakes
// the followers; writers arriving while a batch is in flight just enqueue
// and wait, forming the next batch.
type committer struct {
	mu      sync.Mutex
	pending []*commitOp
	active  bool
}

// commitOp is one queued write: a closure run under the shard's write lock,
// and a channel closed when its batch has committed.
type commitOp struct {
	apply func()
	done  chan struct{}
}

// get returns the live item for key, or nil. Caller holds sh.mu.
func (sh *shard) get(k Key) Item {
	p, ok := sh.parts[encodeScalar(k.Hash)]
	if !ok {
		return nil
	}
	i, found := p.find(k.Sort)
	if !found {
		return nil
	}
	return p.rows[i].item
}

// put installs item under key, replacing any existing row. Caller holds
// sh.mu.
func (sh *shard) put(k Key, it Item) {
	hk := encodeScalar(k.Hash)
	p, ok := sh.parts[hk]
	if !ok {
		p = &partition{}
		sh.parts[hk] = p
	}
	i, found := p.find(k.Sort)
	if found {
		p.rows[i].item = it
		return
	}
	p.insertAt(i, &row{sortVal: k.Sort, item: it})
}

// delete removes the row for key if present. Caller holds sh.mu.
func (sh *shard) delete(k Key) {
	hk := encodeScalar(k.Hash)
	p, ok := sh.parts[hk]
	if !ok {
		return
	}
	i, found := p.find(k.Sort)
	if !found {
		return
	}
	p.removeAt(i)
	if len(p.rows) == 0 {
		delete(sh.parts, hk)
	}
}

// applyWrite runs fn inside sh's write critical section, charging the
// latency model's commit cost while the latch is held (real stores hold a
// partition's write latch for the duration of the persistence flush; see
// CommitLatencyModel). With group commit off, every write pays its own
// latch acquisition and flush. With group commit on, fn joins the shard's
// in-flight batch: a leader drains the whole queue under one latch and one
// flush, and per-op conditions are evaluated by each closure against the
// row state its predecessors in the batch left behind — the same
// serialization the unbatched path produces.
func (s *Store) applyWrite(sh *shard, fn func()) {
	if !s.groupCommit.Load() {
		sh.mu.Lock()
		fn()
		s.commitSleep(1)
		sh.mu.Unlock()
		return
	}
	op := &commitOp{apply: fn, done: make(chan struct{})}
	sh.gc.mu.Lock()
	sh.gc.pending = append(sh.gc.pending, op)
	if sh.gc.active {
		sh.gc.mu.Unlock()
		<-op.done
		return
	}
	sh.gc.active = true
	for {
		batch := sh.gc.pending
		sh.gc.pending = nil
		if len(batch) == 0 {
			sh.gc.active = false
			sh.gc.mu.Unlock()
			return
		}
		sh.gc.mu.Unlock()

		sh.mu.Lock()
		for _, o := range batch {
			o.apply()
		}
		s.commitSleep(len(batch))
		sh.mu.Unlock()

		s.metrics.GroupCommits.Add(1)
		s.metrics.GroupCommitOps.Add(int64(len(batch)))
		for _, o := range batch {
			close(o.done)
		}
		sh.gc.mu.Lock()
	}
}

// commitSleep charges the commit-latch cost for a batch of ops, when the
// latency model defines one.
func (s *Store) commitSleep(ops int) {
	m, ok := s.lat().(CommitLatencyModel)
	if !ok {
		return
	}
	if d := m.CommitLatency(ops); d > 0 {
		sleep(d)
	}
}
