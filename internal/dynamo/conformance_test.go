package dynamo_test

import (
	"testing"

	"repro/internal/dynamo"
	_ "repro/internal/sim" // activates the simulator-backed conformance section
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// The in-memory store must pass the backend conformance suite in every
// interesting configuration: the seed's single-latch layout, a striped
// layout, and the striped layout with the group-commit batcher on.
func TestConformanceSingleShard(t *testing.T) {
	storagetest.Run(t, func(tb testing.TB) storage.Backend {
		return dynamo.NewStore()
	})
}

func TestConformanceSharded(t *testing.T) {
	storagetest.Run(t, func(tb testing.TB) storage.Backend {
		return dynamo.NewStore(dynamo.WithShards(8))
	})
}

func TestConformanceShardedGroupCommit(t *testing.T) {
	storagetest.Run(t, func(tb testing.TB) storage.Backend {
		return dynamo.NewStore(dynamo.WithShards(8), dynamo.WithGroupCommit(true))
	})
}
