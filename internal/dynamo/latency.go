package dynamo

import (
	"math/rand"
	"sync"
	"time"
)

// OpKind classifies store operations for the latency model and metrics.
type OpKind uint8

// Operation kinds.
const (
	OpGet OpKind = iota
	OpPut
	OpUpdate
	OpDelete
	OpQuery
	OpScan
	OpTxWrite
	opKinds // sentinel
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpQuery:
		return "query"
	case OpScan:
		return "scan"
	case OpTxWrite:
		return "txwrite"
	}
	return "unknown"
}

// LatencyModel decides how long an operation's simulated round trip takes.
// items and bytes describe the response payload (rows touched and projected
// bytes), letting models charge for scan fan-out the way a real network
// round trip would.
type LatencyModel interface {
	OpLatency(op OpKind, items, bytes int) time.Duration
}

// CommitLatencyModel is an optional LatencyModel extension for stores whose
// write path holds a partition's write latch while the mutation is made
// durable (an fsync, a replication round). When the installed model
// implements it, the store charges CommitLatency inside the owning shard's
// critical section: one charge per write on the plain path, one charge per
// batch on the group-commit path — which is exactly the cost structure group
// commit amortizes. Models that don't implement it (the defaults) charge
// nothing, preserving the seed's behavior.
type CommitLatencyModel interface {
	// CommitLatency returns the latch-hold cost of committing a batch of
	// ops operations.
	CommitLatency(ops int) time.Duration
}

// ZeroLatency is the unit-test model: no artificial delay.
type ZeroLatency struct{}

// OpLatency implements LatencyModel.
func (ZeroLatency) OpLatency(OpKind, int, int) time.Duration { return 0 }

// CloudLatency models a managed NoSQL store reached over a datacenter
// network: a per-op base cost, a per-item and per-KB increment, and
// multiplicative jitter with an occasional slow tail. The defaults are
// scaled-down DynamoDB-like shapes (the paper's Figure 13 baseline measures
// single-digit-millisecond medians); Scale lets benchmarks compress time.
type CloudLatency struct {
	Base    [opKinds]time.Duration
	PerItem time.Duration
	PerKB   time.Duration
	// Jitter is the +/- fraction of uniform noise (0.2 = ±20%).
	Jitter float64
	// TailP is the probability of a tail event that multiplies the sample by
	// TailMult (models p99 behaviour).
	TailP    float64
	TailMult float64
	// Scale multiplies every sample; 0 means 1.0.
	Scale float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewCloudLatency returns a CloudLatency with DynamoDB-shaped defaults,
// compressed by scale (e.g. scale=0.1 runs 10× faster than the modelled
// service) and seeded deterministically.
func NewCloudLatency(scale float64, seed int64) *CloudLatency {
	m := &CloudLatency{
		PerItem:  40 * time.Microsecond,
		PerKB:    8 * time.Microsecond,
		Jitter:   0.25,
		TailP:    0.01,
		TailMult: 5,
		Scale:    scale,
		rng:      rand.New(rand.NewSource(seed)),
	}
	m.Base[OpGet] = 3 * time.Millisecond
	m.Base[OpPut] = 4 * time.Millisecond
	m.Base[OpUpdate] = 4 * time.Millisecond
	m.Base[OpDelete] = 4 * time.Millisecond
	m.Base[OpQuery] = 4 * time.Millisecond
	m.Base[OpScan] = 5 * time.Millisecond
	// TransactWriteItems runs a two-phase commit across the items; on
	// DynamoDB it costs several times a plain write (the §7.3 comparison
	// has cross-table-txn writes at 2–2.5× a full Beldi DAAL write, i.e.
	// roughly scan+update doubled).
	m.Base[OpTxWrite] = 22 * time.Millisecond
	return m
}

// CommitCost decorates a LatencyModel with a group-commit cost shape: each
// commit batch pays Flush once plus PerOp per operation, charged while the
// owning shard's write latch is held. Wrapping CloudLatency with a nonzero
// Flush turns the store into a flush-bound substrate whose throughput
// ceiling is shards/Flush unbatched and far higher under group commit — the
// regime bench.ShardSweep measures.
type CommitCost struct {
	// Inner handles per-op round-trip latency; nil means ZeroLatency.
	Inner LatencyModel
	// Flush is the fixed per-batch latch-hold cost.
	Flush time.Duration
	// PerOp is the incremental latch-hold cost per operation in the batch.
	PerOp time.Duration
}

// OpLatency implements LatencyModel by delegating to Inner.
func (c CommitCost) OpLatency(op OpKind, items, bytes int) time.Duration {
	if c.Inner == nil {
		return 0
	}
	return c.Inner.OpLatency(op, items, bytes)
}

// CommitLatency implements CommitLatencyModel.
func (c CommitCost) CommitLatency(ops int) time.Duration {
	return c.Flush + time.Duration(ops)*c.PerOp
}

// sleep blocks for d; a seam kept trivial on purpose (benchmarks rely on
// real sleeping to recreate round-trip concurrency).
func sleep(d time.Duration) { time.Sleep(d) }

// OpLatency implements LatencyModel.
func (m *CloudLatency) OpLatency(op OpKind, items, bytes int) time.Duration {
	d := m.Base[op] + time.Duration(items)*m.PerItem + time.Duration(bytes/1024)*m.PerKB
	m.mu.Lock()
	j := 1 + m.Jitter*(2*m.rng.Float64()-1)
	tail := m.rng.Float64() < m.TailP
	m.mu.Unlock()
	f := float64(d) * j
	if tail {
		f *= m.TailMult
	}
	scale := m.Scale
	if scale == 0 {
		scale = 1
	}
	return time.Duration(f * scale)
}
