package dynamo

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultMaxItemSize mirrors DynamoDB's 400 KB item cap [Limits in
// DynamoDB], the constraint that motivates Beldi's linked DAAL (§4.1).
const DefaultMaxItemSize = 400 * 1024

// Schema describes a table: its name, primary key, optional secondary
// indexes, item size cap, and shard count.
type Schema struct {
	Name    string
	HashKey string // required attribute name
	SortKey string // optional; "" means a simple (hash-only) primary key

	// MaxItemSize caps each row's footprint; 0 means DefaultMaxItemSize.
	MaxItemSize int

	// Shards is the number of lock stripes the table's partitions are
	// hash-distributed across. Writes to different shards proceed in
	// parallel; all rows of one partition share a shard. 0 means the store's
	// default (WithShards, itself defaulting to DefaultShards).
	Shards int

	// Indexes are secondary indexes maintained synchronously (the store is
	// single-node, so "global" indexes are strongly consistent here).
	Indexes []IndexSchema
}

// IndexSchema describes a secondary index with its own hash (and optional
// sort) attribute. Items missing the index hash attribute simply do not
// appear in the index, which is how Beldi's intent collector keeps its
// "unfinished intents" index sparse (§3.3).
type IndexSchema struct {
	Name    string
	HashKey string
	SortKey string
}

// Key identifies a row: the hash attribute value and, for composite-key
// tables, the sort attribute value (Null otherwise).
type Key struct {
	Hash Value
	Sort Value
}

// HK builds a simple key.
func HK(hash Value) Key { return Key{Hash: hash} }

// HSK builds a composite key.
func HSK(hash, sort Value) Key { return Key{Hash: hash, Sort: sort} }

// String renders the key as "hash" or "hash/sort" for diagnostics.
func (k Key) String() string {
	if k.Sort.IsNull() {
		return k.Hash.String()
	}
	return k.Hash.String() + "/" + k.Sort.String()
}

// encodeScalar renders a scalar value as a map key. Only the kinds usable as
// key attributes (string, number, bytes, bool) are supported.
func encodeScalar(v Value) string {
	switch v.Kind() {
	case KindString:
		return "s:" + v.Str()
	case KindNumber:
		return "n:" + strconv.FormatFloat(v.Num(), 'g', -1, 64)
	case KindBytes:
		return "b:" + string(v.BytesVal())
	case KindBool:
		return "t:" + strconv.FormatBool(v.BoolVal())
	case KindNull:
		return ""
	default:
		return "?:" + v.String()
	}
}

// row is a stored item plus its decoded sort value for ordering.
type row struct {
	sortVal Value
	item    Item
}

// partition holds all rows sharing a hash key, ordered by sort value.
type partition struct {
	rows []*row // ascending by sortVal
}

func (p *partition) find(sortVal Value) (int, bool) {
	i := sort.Search(len(p.rows), func(i int) bool {
		return p.rows[i].sortVal.Compare(sortVal) >= 0
	})
	if i < len(p.rows) && p.rows[i].sortVal.Equal(sortVal) {
		return i, true
	}
	return i, false
}

func (p *partition) insertAt(i int, r *row) {
	p.rows = append(p.rows, nil)
	copy(p.rows[i+1:], p.rows[i:])
	p.rows[i] = r
}

func (p *partition) removeAt(i int) {
	copy(p.rows[i:], p.rows[i+1:])
	p.rows = p.rows[:len(p.rows)-1]
}

// table is the store's internal representation of one table: a fixed array
// of shards, each a lock-striped slice of the partition space. Single-shard
// operations (Get, Put, Update, Delete, Query) touch exactly one shard's
// lock; whole-table operations (Scan, QueryIndex, TableBytes) take every
// shard's read lock in index order, so their results remain consistent
// snapshots — slightly stronger than DynamoDB's per-row linearizability,
// and sufficient for the property Beldi needs from scans (§4.1: writes
// completing strictly before the scan are reflected in it).
type table struct {
	schema  Schema
	maxSize int
	shards  []*shard
}

func newTable(s Schema, defaultShards int) *table {
	max := s.MaxItemSize
	if max == 0 {
		max = DefaultMaxItemSize
	}
	n := s.Shards
	if n == 0 {
		n = defaultShards
	}
	if n < 1 {
		n = 1
	}
	t := &table{schema: s, maxSize: max, shards: make([]*shard, n)}
	for i := range t.shards {
		t.shards[i] = &shard{parts: make(map[string]*partition)}
	}
	return t
}

// shardFor returns the shard owning the partition with the given encoded
// hash key.
func (t *table) shardFor(encodedHash string) *shard {
	return t.shards[shardIndex(encodedHash, len(t.shards))]
}

// shardOf returns the shard owning key's partition.
func (t *table) shardOf(k Key) *shard {
	return t.shardFor(encodeScalar(k.Hash))
}

// rlockAll read-locks every shard in index order (whole-table snapshot).
func (t *table) rlockAll() {
	for _, sh := range t.shards {
		sh.mu.RLock()
	}
}

// runlockAll releases rlockAll in reverse order.
func (t *table) runlockAll() {
	for i := len(t.shards) - 1; i >= 0; i-- {
		t.shards[i].mu.RUnlock()
	}
}

// keyOf extracts the primary key from an item.
func (t *table) keyOf(it Item) (Key, error) {
	h, ok := it[t.schema.HashKey]
	if !ok {
		return Key{}, fmt.Errorf("dynamo: table %s: item missing hash key %q", t.schema.Name, t.schema.HashKey)
	}
	k := Key{Hash: h}
	if t.schema.SortKey != "" {
		sv, ok := it[t.schema.SortKey]
		if !ok {
			return Key{}, fmt.Errorf("dynamo: table %s: item missing sort key %q", t.schema.Name, t.schema.SortKey)
		}
		k.Sort = sv
	}
	return k, nil
}

// partFor returns the partition for an encoded hash key, or nil. Caller
// holds the owning shard's lock.
func (t *table) partFor(encodedHash string) *partition {
	return t.shardFor(encodedHash).parts[encodedHash]
}

// bytes sums the storage footprint of every row. Caller holds every shard
// lock.
func (t *table) bytes() int {
	n := 0
	for _, sh := range t.shards {
		for _, p := range sh.parts {
			for _, r := range p.rows {
				n += r.item.Size()
			}
		}
	}
	return n
}

// itemCount counts rows. Caller holds every shard lock.
func (t *table) itemCount() int {
	n := 0
	for _, sh := range t.shards {
		for _, p := range sh.parts {
			n += len(p.rows)
		}
	}
	return n
}

// sortedHashKeys returns partition keys across all shards in deterministic
// order. Caller holds every shard lock.
func (t *table) sortedHashKeys() []string {
	var keys []string
	for _, sh := range t.shards {
		for k := range sh.parts {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// findIndex returns the IndexSchema by name.
func (t *table) findIndex(name string) (IndexSchema, bool) {
	for _, ix := range t.schema.Indexes {
		if ix.Name == name {
			return ix, true
		}
	}
	return IndexSchema{}, false
}

// project reduces an item to the requested paths (plus nothing else),
// mirroring a DynamoDB projection expression. A nil projection returns a
// clone of the full item. Beldi's DAAL traversal projects just RowId and
// NextRow to download "256 bits per row" (§4.1).
func project(it Item, proj []Path) Item {
	if proj == nil {
		return it.Clone()
	}
	out := make(Item, len(proj))
	for _, p := range proj {
		v, ok := it.Get(p)
		if !ok {
			continue
		}
		if p.MapKey != "" {
			// Keep the map shape: {Attr: {MapKey: v}} so callers address
			// entries uniformly.
			cur, exists := out[p.Attr]
			if !exists || cur.Kind() != KindMap {
				out[p.Attr] = M(map[string]Value{p.MapKey: v.Clone()})
			} else {
				cur.m[p.MapKey] = v.Clone()
			}
			continue
		}
		out[p.Attr] = v.Clone()
	}
	return out
}
