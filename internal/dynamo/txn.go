package dynamo

import (
	"fmt"
	"sort"
)

// TxOp is one operation inside a TransactWrite: exactly one of Put, Updates,
// Delete, or Check semantics, each optionally guarded by Cond. This mirrors
// DynamoDB's TransactWriteItems, which the paper's cross-table-transaction
// comparator (§7.3) uses to pair a data write with a log append across
// tables, and whose ConditionCheck element (Check here) lets a write in one
// row hinge atomically on the state of another — the fencing primitive the
// cluster runtime builds lease-guarded claims on.
type TxOp struct {
	Table string
	Key   Key
	Cond  Cond

	// Put replaces the row with this item (Key must match the item's key
	// attributes, which callers typically include).
	Put Item
	// Updates applies update actions (upsert, like Store.Update).
	Updates []Update
	// Delete removes the row.
	Delete bool
	// Check asserts Cond against the row at Key without writing anything —
	// DynamoDB's ConditionCheck. The whole transaction fails if the
	// condition does not hold at commit time.
	Check bool
}

// TransactWrite applies all ops atomically: either every condition passes
// and every op applies, or nothing does and a *TxCanceledError describes the
// per-op outcomes. Ops must target distinct rows (DynamoDB rejects duplicate
// targets inside one transaction).
func (s *Store) TransactWrite(ops []TxOp) error {
	if len(ops) == 0 {
		return nil
	}
	type prepared struct {
		op  TxOp
		t   *table
		key Key
		sh  *shard
	}
	preps := make([]prepared, len(ops))
	seen := make(map[string]bool, len(ops))
	type lockTarget struct {
		name string // table name, primary lock-order key
		idx  int    // shard index within the table
		sh   *shard
	}
	lockSet := make(map[*shard]lockTarget)
	for i, op := range ops {
		t, err := s.table(op.Table)
		if err != nil {
			return err
		}
		key := op.Key
		if op.Put != nil {
			k, err := t.keyOf(op.Put)
			if err != nil {
				return err
			}
			key = k
		}
		target := op.Table + "\x00" + encodeScalar(key.Hash) + "\x00" + encodeScalar(key.Sort)
		if seen[target] {
			return fmt.Errorf("dynamo: TransactWrite: duplicate target %s %s", op.Table, key)
		}
		seen[target] = true
		hk := encodeScalar(key.Hash)
		idx := shardIndex(hk, len(t.shards))
		sh := t.shards[idx]
		preps[i] = prepared{op: op, t: t, key: key, sh: sh}
		lockSet[sh] = lockTarget{name: op.Table, idx: idx, sh: sh}
	}

	// Lock the involved shards in (table name, shard index) order to avoid
	// deadlock with concurrent transactions, then check all conditions before
	// applying anything. Single-row writers hold at most one shard lock and
	// acquire no others, so they cannot participate in a cycle.
	locks := make([]lockTarget, 0, len(lockSet))
	for _, lt := range lockSet {
		locks = append(locks, lt)
	}
	sort.Slice(locks, func(i, j int) bool {
		if locks[i].name != locks[j].name {
			return locks[i].name < locks[j].name
		}
		return locks[i].idx < locks[j].idx
	})
	for _, lt := range locks {
		lt.sh.mu.Lock()
	}
	unlock := func() {
		for i := len(locks) - 1; i >= 0; i-- {
			locks[i].sh.mu.Unlock()
		}
	}

	reasons := make([]error, len(ops))
	failed := false
	staged := make([]Item, len(ops)) // result row per op; nil means delete
	for i, p := range preps {
		cur := p.sh.get(p.key)
		if p.op.Cond != nil && !evalAgainst(p.op.Cond, cur) {
			reasons[i] = condFailure(p.op.Table, p.key, p.op.Cond)
			failed = true
			continue
		}
		switch {
		case p.op.Check:
			// Condition-only: the guard above already evaluated Cond; keep
			// the row exactly as it is (a nil row stays absent).
			staged[i] = cur
		case p.op.Put != nil:
			next := p.op.Put.Clone()
			if next.Size() > p.t.maxSize {
				reasons[i] = fmt.Errorf("%w: table %s key %s", ErrItemTooLarge, p.op.Table, p.key)
				failed = true
				continue
			}
			staged[i] = next
		case p.op.Delete:
			staged[i] = nil
		default:
			next := p.t.materialize(cur, p.key)
			for _, u := range p.op.Updates {
				if err := u.apply(next); err != nil {
					reasons[i] = err
					failed = true
					break
				}
			}
			if reasons[i] == nil && next.Size() > p.t.maxSize {
				reasons[i] = fmt.Errorf("%w: table %s key %s", ErrItemTooLarge, p.op.Table, p.key)
				failed = true
			}
			staged[i] = next
		}
	}

	if failed {
		unlock()
		s.metrics.CondFailures.Add(1)
		s.charge(OpTxWrite, len(ops), 0)
		return &TxCanceledError{Reasons: reasons}
	}
	for i, p := range preps {
		if p.op.Check {
			continue // condition already held; nothing to write
		}
		if p.op.Delete {
			p.sh.delete(p.key)
			continue
		}
		p.sh.put(p.key, staged[i])
		s.metrics.BytesWritten.Add(int64(staged[i].Size()))
	}
	s.commitSleep(len(ops))
	unlock()
	// Notify after the shard locks are released: subscribers woken by these
	// events re-read through the normal API and must not deadlock on the
	// transaction's own latches.
	for _, p := range preps {
		if p.op.Check {
			continue
		}
		s.notifyCommit(p.op.Table, p.key.Hash)
	}
	s.charge(OpTxWrite, len(ops), 0)
	return nil
}
