package dynamo

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Model-based test: random operation sequences against the store and an
// in-memory model must agree on every intermediate read and on final state.
// This is the ground the core protocols stand on — conditional updates with
// exact check-then-apply semantics.

type modelOp struct {
	kind string // "put", "update", "delete", "get"
	key  string
	val  int64
	cond string // "", "exists", "absent", "eq"
	arg  int64
}

func genOps(r *rand.Rand, n int) []modelOp {
	keys := []string{"a", "b", "c"}
	kinds := []string{"put", "update", "delete", "get", "update", "get"}
	conds := []string{"", "exists", "absent", "eq"}
	ops := make([]modelOp, n)
	for i := range ops {
		ops[i] = modelOp{
			kind: kinds[r.Intn(len(kinds))],
			key:  keys[r.Intn(len(keys))],
			val:  int64(r.Intn(50)),
			cond: conds[r.Intn(len(conds))],
			arg:  int64(r.Intn(50)),
		}
	}
	return ops
}

func evalModelCond(model map[string]int64, op modelOp) bool {
	cur, exists := model[op.key]
	switch op.cond {
	case "exists":
		return exists
	case "absent":
		return !exists
	case "eq":
		return exists && cur == op.arg
	default:
		return true
	}
}

func buildCond(op modelOp) Cond {
	switch op.cond {
	case "exists":
		return Exists(A("V"))
	case "absent":
		return NotExists(A("V"))
	case "eq":
		return Eq(A("V"), NInt(op.arg))
	default:
		return nil
	}
}

func TestStoreAgreesWithModel(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		s.MustCreateTable(Schema{Name: "t", HashKey: "K"})
		model := make(map[string]int64)
		for i, op := range genOps(r, 60) {
			want := evalModelCond(model, op)
			switch op.kind {
			case "put":
				err := s.Put("t", Item{"K": S(op.key), "V": NInt(op.val)}, buildCond(op))
				if got := err == nil; got != want {
					t.Logf("op %d %+v: put ok=%v want %v", i, op, got, want)
					return false
				}
				if err != nil && !errors.Is(err, ErrConditionFailed) {
					return false
				}
				if want {
					model[op.key] = op.val
				}
			case "update":
				err := s.Update("t", HK(S(op.key)), buildCond(op), Set(A("V"), NInt(op.val)))
				if got := err == nil; got != want {
					t.Logf("op %d %+v: update ok=%v want %v", i, op, got, want)
					return false
				}
				if want {
					model[op.key] = op.val
				}
			case "delete":
				err := s.Delete("t", HK(S(op.key)), buildCond(op))
				if got := err == nil; got != want {
					t.Logf("op %d %+v: delete ok=%v want %v", i, op, got, want)
					return false
				}
				if want {
					delete(model, op.key)
				}
			case "get":
				it, ok, err := s.Get("t", HK(S(op.key)))
				if err != nil {
					return false
				}
				mv, exists := model[op.key]
				if ok != exists {
					t.Logf("op %d %+v: presence %v want %v", i, op, ok, exists)
					return false
				}
				if ok {
					// Put-created rows always have V; Update-created rows have
					// V too (only Set(V) updates are issued).
					if got := it["V"].Int(); got != mv {
						t.Logf("op %d %+v: V=%d want %d", i, op, got, mv)
						return false
					}
				}
			}
		}
		// Final state agreement (scan order is deterministic).
		items, err := s.Scan("t", QueryOpts{})
		if err != nil || len(items) != len(model) {
			t.Logf("final: %d rows, model %d (err %v)", len(items), len(model), err)
			return false
		}
		for _, it := range items {
			if it["V"].Int() != model[it["K"].Str()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTransactWriteAgreesWithSequential(t *testing.T) {
	// A transaction whose conditions all pass must be equivalent to
	// applying its ops one by one; a transaction with any failing condition
	// must be equivalent to applying nothing.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		txStore := NewStore()
		seqStore := NewStore()
		for _, s := range []*Store{txStore, seqStore} {
			s.MustCreateTable(Schema{Name: "t", HashKey: "K"})
			for _, k := range []string{"a", "b", "c"} {
				if r.Intn(2) == 0 {
					continue
				}
				_ = s.Put("t", Item{"K": S(k), "V": NInt(int64(r.Intn(5)))}, nil)
			}
		}
		// Same seeding for both stores requires re-seeding deterministically:
		// instead, copy seqStore's state from txStore via scan.
		items, _ := txStore.Scan("t", QueryOpts{})
		seqStore2 := NewStore()
		seqStore2.MustCreateTable(Schema{Name: "t", HashKey: "K"})
		for _, it := range items {
			_ = seqStore2.Put("t", it, nil)
		}

		keys := []string{"a", "b", "c"}
		var ops []TxOp
		for i, k := range keys[:1+r.Intn(3)] {
			op := TxOp{Table: "t", Key: HK(S(k)),
				Updates: []Update{Set(A("V"), NInt(int64(100+i)))}}
			if r.Intn(3) == 0 {
				op.Cond = Eq(A("V"), NInt(int64(r.Intn(5))))
			}
			ops = append(ops, op)
		}
		txErr := txStore.TransactWrite(ops)

		// Sequential application with all-or-nothing semantics.
		allPass := true
		for _, op := range ops {
			it, ok, _ := seqStore2.Get("t", op.Key)
			var cur Item
			if ok {
				cur = it
			}
			if op.Cond != nil && !evalAgainst(op.Cond, cur) {
				allPass = false
			}
		}
		if allPass != (txErr == nil) {
			t.Logf("txErr=%v allPass=%v", txErr, allPass)
			return false
		}
		if allPass {
			for _, op := range ops {
				if err := seqStore2.Update("t", op.Key, nil, op.Updates...); err != nil {
					return false
				}
			}
		}
		// Compare final states.
		a, _ := txStore.Scan("t", QueryOpts{})
		b, _ := seqStore2.Scan("t", QueryOpts{})
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Logf("diverged: %v vs %v", a[i], b[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQueryMatchesFilteredScan(t *testing.T) {
	// Query(hash) must equal Scan filtered to that hash, in the same order.
	s := NewStore()
	s.MustCreateTable(Schema{Name: "t", HashKey: "H", SortKey: "R"})
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		mustPut(t, s, "t", Item{
			"H": S(fmt.Sprintf("h%d", r.Intn(4))),
			"R": NInt(int64(i)),
			"V": NInt(int64(r.Intn(100))),
		})
	}
	for h := 0; h < 4; h++ {
		hash := S(fmt.Sprintf("h%d", h))
		q, err := s.Query("t", hash, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		sc, err := s.Scan("t", QueryOpts{Filter: Eq(A("H"), hash)})
		if err != nil {
			t.Fatal(err)
		}
		if len(q) != len(sc) {
			t.Fatalf("h%d: query %d rows, scan %d", h, len(q), len(sc))
		}
		for i := range q {
			if q[i].String() != sc[i].String() {
				t.Fatalf("h%d row %d: %v vs %v", h, i, q[i], sc[i])
			}
		}
	}
}
