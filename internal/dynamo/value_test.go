package dynamo

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{S("x"), KindString},
		{N(1.5), KindNumber},
		{NInt(7), KindNumber},
		{Bool(true), KindBool},
		{Bytes([]byte("ab")), KindBytes},
		{L(S("a")), KindList},
		{M(map[string]Value{"k": N(1)}), KindMap},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if got := S("hello").Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := N(2.5).Num(); got != 2.5 {
		t.Errorf("Num = %v", got)
	}
	if got := NInt(41).Int(); got != 41 {
		t.Errorf("Int = %v", got)
	}
	if !Bool(true).BoolVal() {
		t.Error("BoolVal = false")
	}
	if got := string(Bytes([]byte("zz")).BytesVal()); got != "zz" {
		t.Errorf("BytesVal = %q", got)
	}
	if Null.IsNull() != true || S("").IsNull() {
		t.Error("IsNull misbehaves")
	}
}

func TestValueMapGet(t *testing.T) {
	m := M(map[string]Value{"a": N(1)})
	if v, ok := m.MapGet("a"); !ok || v.Num() != 1 {
		t.Errorf("MapGet(a) = %v, %v", v, ok)
	}
	if _, ok := m.MapGet("b"); ok {
		t.Error("MapGet(b) found missing key")
	}
	if _, ok := S("x").MapGet("a"); ok {
		t.Error("MapGet on string succeeded")
	}
}

func TestValueEqual(t *testing.T) {
	eq := []struct{ a, b Value }{
		{Null, Null},
		{S("x"), S("x")},
		{N(1), NInt(1)},
		{Bool(false), Bool(false)},
		{Bytes([]byte("a")), Bytes([]byte("a"))},
		{L(N(1), S("a")), L(N(1), S("a"))},
		{M(map[string]Value{"k": L(N(2))}), M(map[string]Value{"k": L(N(2))})},
	}
	for _, c := range eq {
		if !c.a.Equal(c.b) {
			t.Errorf("%v != %v, want equal", c.a, c.b)
		}
	}
	ne := []struct{ a, b Value }{
		{Null, S("")},
		{S("x"), S("y")},
		{N(1), N(2)},
		{N(1), S("1")},
		{L(N(1)), L(N(1), N(2))},
		{M(map[string]Value{"k": N(1)}), M(map[string]Value{"j": N(1)})},
	}
	for _, c := range ne {
		if c.a.Equal(c.b) {
			t.Errorf("%v == %v, want unequal", c.a, c.b)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if S("a").Compare(S("b")) >= 0 {
		t.Error("a !< b")
	}
	if N(2).Compare(N(10)) >= 0 {
		t.Error("2 !< 10 numerically")
	}
	if S("2").Compare(S("10")) <= 0 {
		t.Error("string compare should be lexicographic")
	}
	if N(5).Compare(N(5)) != 0 {
		t.Error("5 != 5")
	}
	// Cross-kind ordering is total and antisymmetric.
	if c1, c2 := S("x").Compare(N(1)), N(1).Compare(S("x")); c1 == 0 || c1 == c2 {
		t.Errorf("cross-kind compare not antisymmetric: %d %d", c1, c2)
	}
}

func TestValueCloneIsolation(t *testing.T) {
	inner := map[string]Value{"a": N(1)}
	orig := M(inner)
	cl := orig.Clone()
	inner["a"] = N(99)
	if v, _ := cl.MapGet("a"); v.Num() != 1 {
		t.Errorf("clone saw mutation: %v", v)
	}
	bs := []byte("ab")
	ob := Bytes(bs)
	cb := ob.Clone()
	bs[0] = 'z'
	if string(cb.BytesVal()) != "ab" {
		t.Errorf("bytes clone saw mutation: %q", cb.BytesVal())
	}
}

func TestValueSize(t *testing.T) {
	if S("abcd").Size() != 4 {
		t.Errorf("string size = %d", S("abcd").Size())
	}
	if N(1).Size() != 8 {
		t.Errorf("number size = %d", N(1).Size())
	}
	if Bool(true).Size() != 1 || Null.Size() != 1 {
		t.Error("bool/null size != 1")
	}
	m := M(map[string]Value{"key": S("abc")})
	// 3 (container) + len("key") + 1 + len("abc") = 3+3+1+3 = 10
	if m.Size() != 10 {
		t.Errorf("map size = %d, want 10", m.Size())
	}
}

func TestValueEqualReflexiveQuick(t *testing.T) {
	f := func(s string, n float64, b bool) bool {
		vs := []Value{S(s), N(n), Bool(b), L(S(s), N(n)), M(map[string]Value{s: N(n)})}
		for _, v := range vs {
			if !v.Equal(v.Clone()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetricQuick(t *testing.T) {
	f := func(a, b float64) bool {
		return N(a).Compare(N(b)) == -N(b).Compare(N(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		c1, c2 := S(a).Compare(S(b)), S(b).Compare(S(a))
		return c1 == -c2
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestItemGetSetRemove(t *testing.T) {
	it := Item{"A": N(1)}
	if v, ok := it.Get(A("A")); !ok || v.Num() != 1 {
		t.Fatalf("Get(A) = %v %v", v, ok)
	}
	if _, ok := it.Get(A("missing")); ok {
		t.Fatal("Get(missing) found")
	}
	if !it.set(AK("Log", "k1"), Bool(true)) {
		t.Fatal("set map entry failed")
	}
	if v, ok := it.Get(AK("Log", "k1")); !ok || !v.BoolVal() {
		t.Fatalf("Get(Log.k1) = %v %v", v, ok)
	}
	if it.set(AK("A", "x"), N(1)) {
		t.Fatal("set through non-map succeeded")
	}
	it.remove(AK("Log", "k1"))
	if _, ok := it.Get(AK("Log", "k1")); ok {
		t.Fatal("map entry survived remove")
	}
	it.remove(A("A"))
	if _, ok := it.Get(A("A")); ok {
		t.Fatal("attr survived remove")
	}
	// Removing missing paths is a no-op.
	it.remove(A("missing"))
	it.remove(AK("missing", "x"))
	it.remove(AK("Log", "missing"))
}

func TestItemSetCopyOnWrite(t *testing.T) {
	shared := M(map[string]Value{"k": N(1)})
	it1 := Item{"Log": shared}
	it2 := it1.Clone()
	if !it1.set(AK("Log", "k2"), N(2)) {
		t.Fatal("set failed")
	}
	if _, ok := it2.Get(AK("Log", "k2")); ok {
		t.Fatal("clone observed mutation (not copy-on-write)")
	}
}

func TestItemSize(t *testing.T) {
	it := Item{"Key": S("k"), "Value": S("0123456789")}
	want := 3 + 1 + 5 + 10
	if it.Size() != want {
		t.Errorf("Size = %d, want %d", it.Size(), want)
	}
}

func TestItemStringDeterministic(t *testing.T) {
	it := Item{"b": N(2), "a": N(1)}
	if got := it.String(); got != "{a=1 b=2}" {
		t.Errorf("String = %q", got)
	}
}
