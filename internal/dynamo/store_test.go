package dynamo

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	s.MustCreateTable(Schema{Name: "kv", HashKey: "K"})
	s.MustCreateTable(Schema{Name: "daal", HashKey: "Key", SortKey: "RowId"})
	return s
}

func TestCreateTableValidation(t *testing.T) {
	s := NewStore()
	if err := s.CreateTable(Schema{Name: "", HashKey: "K"}); err == nil {
		t.Error("empty name accepted")
	}
	if err := s.CreateTable(Schema{Name: "t", HashKey: ""}); err == nil {
		t.Error("empty hash key accepted")
	}
	if err := s.CreateTable(Schema{Name: "t", HashKey: "K"}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable(Schema{Name: "t", HashKey: "K"}); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate create: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newTestStore(t)
	item := Item{"K": S("a"), "V": N(42)}
	if err := s.Put("kv", item, nil); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("kv", HK(S("a")))
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if v := got["V"]; v.Num() != 42 {
		t.Errorf("V = %v", v)
	}
	// The returned item is a copy.
	got["V"] = N(0)
	again, _, _ := s.Get("kv", HK(S("a")))
	if again["V"].Num() != 42 {
		t.Error("mutation leaked into store")
	}
	if _, ok, _ := s.Get("kv", HK(S("zzz"))); ok {
		t.Error("found missing key")
	}
	if _, _, err := s.Get("nope", HK(S("a"))); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table: %v", err)
	}
}

func TestPutConditional(t *testing.T) {
	s := newTestStore(t)
	// Condition evaluated against the absent row.
	if err := s.Put("kv", Item{"K": S("a"), "V": N(1)}, NotExists(A("K"))); err != nil {
		t.Fatal(err)
	}
	err := s.Put("kv", Item{"K": S("a"), "V": N(2)}, NotExists(A("K")))
	if !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("want condition failure, got %v", err)
	}
	got, _, _ := s.Get("kv", HK(S("a")))
	if got["V"].Num() != 1 {
		t.Error("failed put modified row")
	}
}

func TestUpdateUpsertAndCondition(t *testing.T) {
	s := newTestStore(t)
	// Upsert creates the row with key attributes.
	if err := s.Update("kv", HK(S("a")), nil, Set(A("V"), N(1))); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get("kv", HK(S("a")))
	if !ok || got["K"].Str() != "a" || got["V"].Num() != 1 {
		t.Fatalf("upsert produced %v", got)
	}
	// Conditional update success and failure.
	if err := s.Update("kv", HK(S("a")), Eq(A("V"), N(1)), Set(A("V"), N(2))); err != nil {
		t.Fatal(err)
	}
	err := s.Update("kv", HK(S("a")), Eq(A("V"), N(1)), Set(A("V"), N(3)))
	if !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("want condition failure, got %v", err)
	}
	got, _, _ = s.Get("kv", HK(S("a")))
	if got["V"].Num() != 2 {
		t.Errorf("V = %v after failed update", got["V"])
	}
}

func TestUpdateAtomicMultiAction(t *testing.T) {
	s := newTestStore(t)
	// The Beldi write shape: set value, bump log size, add log entry — all
	// atomic with the condition. Rows are created with LogSize present (as
	// Beldi's appendRow does) because missing attributes fail comparisons.
	mustPut(t, s, "daal", Item{"Key": S("k"), "RowId": S("HEAD"), "LogSize": N(0)})
	err := s.Update("daal", HSK(S("k"), S("HEAD")),
		And(NotExists(AK("RecentWrites", "i1.0")), Lt(A("LogSize"), N(4))),
		Set(A("Value"), S("v1")),
		Add(A("LogSize"), 1),
		Set(AK("RecentWrites", "i1.0"), Null),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Get("daal", HSK(S("k"), S("HEAD")))
	if got["LogSize"].Num() != 1 {
		t.Errorf("LogSize = %v", got["LogSize"])
	}
	if _, ok := got.Get(AK("RecentWrites", "i1.0")); !ok {
		t.Error("log entry missing")
	}
	// Same logKey again: condition must fail (at-most-once).
	err = s.Update("daal", HSK(S("k"), S("HEAD")),
		And(NotExists(AK("RecentWrites", "i1.0")), Lt(A("LogSize"), N(4))),
		Set(A("Value"), S("v2")),
	)
	if !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("replay not rejected: %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := newTestStore(t)
	mustPut(t, s, "kv", Item{"K": S("a"), "V": N(1)})
	if err := s.Delete("kv", HK(S("a")), Eq(A("V"), N(2))); !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("conditional delete: %v", err)
	}
	if err := s.Delete("kv", HK(S("a")), Eq(A("V"), N(1))); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("kv", HK(S("a"))); ok {
		t.Error("row survived delete")
	}
	// Deleting a missing row is a no-op.
	if err := s.Delete("kv", HK(S("a")), nil); err != nil {
		t.Errorf("delete missing: %v", err)
	}
}

func TestItemSizeCap(t *testing.T) {
	s := NewStore()
	s.MustCreateTable(Schema{Name: "small", HashKey: "K", MaxItemSize: 64})
	big := Item{"K": S("a"), "V": S(string(make([]byte, 100)))}
	if err := s.Put("small", big, nil); !errors.Is(err, ErrItemTooLarge) {
		t.Fatalf("oversized put: %v", err)
	}
	mustPut(t, s, "small", Item{"K": S("a"), "V": S("ok")})
	err := s.Update("small", HK(S("a")), nil, Set(A("V"), S(string(make([]byte, 100)))))
	if !errors.Is(err, ErrItemTooLarge) {
		t.Fatalf("oversized update: %v", err)
	}
	// Row unchanged after failed update.
	got, _, _ := s.Get("small", HK(S("a")))
	if got["V"].Str() != "ok" {
		t.Error("failed update mutated row")
	}
}

func TestQueryOrderingAndProjection(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 5; i++ {
		mustPut(t, s, "daal", Item{
			"Key":   S("k"),
			"RowId": S(fmt.Sprintf("r%d", i)),
			"Value": N(float64(i)),
			"Extra": S("payload-that-should-be-projected-away"),
		})
	}
	mustPut(t, s, "daal", Item{"Key": S("other"), "RowId": S("r0"), "Value": N(99)})

	items, err := s.Query("daal", S("k"), QueryOpts{Projection: []Path{A("RowId")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("got %d rows", len(items))
	}
	for i, it := range items {
		if want := fmt.Sprintf("r%d", i); it["RowId"].Str() != want {
			t.Errorf("row %d = %v, want RowId %s", i, it, want)
		}
		if _, ok := it["Extra"]; ok {
			t.Error("projection leaked Extra")
		}
		if _, ok := it["Value"]; ok {
			t.Error("projection leaked Value")
		}
	}

	desc, _ := s.Query("daal", S("k"), QueryOpts{Descending: true, Limit: 2})
	if len(desc) != 2 || desc[0]["RowId"].Str() != "r4" {
		t.Errorf("descending limit: %v", desc)
	}

	filtered, _ := s.Query("daal", S("k"), QueryOpts{Filter: Ge(A("Value"), N(3))})
	if len(filtered) != 2 {
		t.Errorf("filter: %d rows", len(filtered))
	}
}

func TestQueryNumericSortOrder(t *testing.T) {
	s := NewStore()
	s.MustCreateTable(Schema{Name: "n", HashKey: "H", SortKey: "S"})
	for _, v := range []float64{10, 2, 33, 1} {
		mustPut(t, s, "n", Item{"H": S("h"), "S": N(v)})
	}
	items, _ := s.Query("n", S("h"), QueryOpts{})
	var got []float64
	for _, it := range items {
		got = append(got, it["S"].Num())
	}
	want := []float64{1, 2, 10, 33}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestMapEntryProjection(t *testing.T) {
	s := newTestStore(t)
	mustPut(t, s, "daal", Item{
		"Key":   S("k"),
		"RowId": S("HEAD"),
		"RecentWrites": M(map[string]Value{
			"i1.0": Bool(true),
			"i2.0": Bool(false),
		}),
	})
	items, err := s.Query("daal", S("k"), QueryOpts{
		Projection: []Path{A("RowId"), AK("RecentWrites", "i1.0")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Fatalf("%d rows", len(items))
	}
	if v, ok := items[0].Get(AK("RecentWrites", "i1.0")); !ok || !v.BoolVal() {
		t.Errorf("projected entry = %v %v", v, ok)
	}
	if _, ok := items[0].Get(AK("RecentWrites", "i2.0")); ok {
		t.Error("unprojected map entry leaked")
	}
}

func TestScanDeterministicSnapshot(t *testing.T) {
	s := newTestStore(t)
	for i := 0; i < 10; i++ {
		mustPut(t, s, "kv", Item{"K": S(fmt.Sprintf("k%02d", i)), "V": N(float64(i))})
	}
	a, err := s.Scan("kv", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Scan("kv", QueryOpts{})
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("scan sizes %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i]["K"].Str() != b[i]["K"].Str() {
			t.Fatal("scan order nondeterministic")
		}
	}
}

func TestSecondaryIndexQuery(t *testing.T) {
	s := NewStore()
	s.MustCreateTable(Schema{
		Name: "intent", HashKey: "InstanceId",
		Indexes: []IndexSchema{{Name: "by-done", HashKey: "DoneFlag", SortKey: "Ts"}},
	})
	for i := 0; i < 6; i++ {
		done := "yes"
		if i%2 == 0 {
			done = "no"
		}
		mustPut(t, s, "intent", Item{
			"InstanceId": S(fmt.Sprintf("i%d", i)),
			"DoneFlag":   S(done),
			"Ts":         N(float64(100 - i)),
		})
	}
	// One row lacks the index attribute entirely: sparse index behaviour.
	mustPut(t, s, "intent", Item{"InstanceId": S("bare")})

	unfinished, err := s.QueryIndex("intent", "by-done", S("no"), QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(unfinished) != 3 {
		t.Fatalf("%d unfinished, want 3", len(unfinished))
	}
	// Ordered by Ts ascending: i4 (96), i2 (98), i0 (100).
	if unfinished[0]["InstanceId"].Str() != "i4" {
		t.Errorf("first = %v", unfinished[0])
	}
	if _, err := s.QueryIndex("intent", "nope", S("no"), QueryOpts{}); !errors.Is(err, ErrNoSuchIndex) {
		t.Errorf("missing index: %v", err)
	}
}

func TestTableAccounting(t *testing.T) {
	s := newTestStore(t)
	mustPut(t, s, "kv", Item{"K": S("a"), "V": S("0123456789")})
	n, err := s.TableBytes("kv")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1+1+1+10 {
		t.Errorf("TableBytes = %d", n)
	}
	c, _ := s.TableItemCount("kv")
	if c != 1 {
		t.Errorf("count = %d", c)
	}
	names := s.TableNames()
	if len(names) != 2 || names[0] != "daal" || names[1] != "kv" {
		t.Errorf("names = %v", names)
	}
}

func TestMetricsCounting(t *testing.T) {
	s := newTestStore(t)
	before := s.Metrics().Snapshot()
	mustPut(t, s, "kv", Item{"K": S("a"), "V": N(1)})
	s.Get("kv", HK(S("a")))
	s.Update("kv", HK(S("a")), Eq(A("V"), N(99)), Set(A("V"), N(2))) // fails
	after := s.Metrics().Snapshot().Sub(before)
	if after.Ops["put"] != 1 || after.Ops["get"] != 1 || after.Ops["update"] != 1 {
		t.Errorf("ops = %v", after.Ops)
	}
	if after.CondFailures != 1 {
		t.Errorf("cond failures = %d", after.CondFailures)
	}
	if after.BytesRead <= 0 || after.BytesWritten <= 0 {
		t.Errorf("bytes: read=%d written=%d", after.BytesRead, after.BytesWritten)
	}
}

func TestConcurrentConditionalCounter(t *testing.T) {
	// 50 goroutines race conditional increments; exactly one per round may
	// win. Total must equal rounds — the atomicity Beldi's at-most-once
	// guarantee is built on.
	s := newTestStore(t)
	mustPut(t, s, "kv", Item{"K": S("ctr"), "V": N(0)})
	const rounds, workers = 30, 10
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		wins := make(chan struct{}, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := s.Update("kv", HK(S("ctr")),
					Eq(A("V"), N(float64(r))),
					Set(A("V"), N(float64(r+1))))
				if err == nil {
					wins <- struct{}{}
				} else if !errors.Is(err, ErrConditionFailed) {
					t.Errorf("unexpected error: %v", err)
				}
			}()
		}
		wg.Wait()
		close(wins)
		n := 0
		for range wins {
			n++
		}
		if n != 1 {
			t.Fatalf("round %d: %d winners", r, n)
		}
	}
	got, _, _ := s.Get("kv", HK(S("ctr")))
	if got["V"].Num() != rounds {
		t.Errorf("final = %v, want %d", got["V"], rounds)
	}
}

func mustPut(t *testing.T, s *Store, table string, it Item) {
	t.Helper()
	if err := s.Put(table, it, nil); err != nil {
		t.Fatalf("put %s %v: %v", table, it, err)
	}
}
