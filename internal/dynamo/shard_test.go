package dynamo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the sharded store and the per-shard group-commit batcher. The
// concurrency-heavy tests here are the ones CI runs under the race
// detector: they hammer one shard's batcher with conditional writes while
// readers and whole-table snapshots run alongside.

func TestSchemaShardsOverrideAndDefault(t *testing.T) {
	s := NewStore(WithShards(4))
	if s.DefaultShards() != 4 {
		t.Fatalf("DefaultShards = %d", s.DefaultShards())
	}
	s.MustCreateTable(Schema{Name: "dflt", HashKey: "K"})
	s.MustCreateTable(Schema{Name: "wide", HashKey: "K", Shards: 16})
	for name, want := range map[string]int{"dflt": 4, "wide": 16} {
		n, err := s.TableShards(name)
		if err != nil || n != want {
			t.Errorf("TableShards(%s) = %d, %v; want %d", name, n, err, want)
		}
	}
	if err := s.CreateTable(Schema{Name: "bad", HashKey: "K", Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := s.TableShards("nope"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("TableShards on missing table: %v", err)
	}
}

// TestShardedTableObservableEquivalence drives the same operation sequence
// against 1-shard and 8-shard tables and asserts identical results row by
// row, including whole-table scans (deterministic partition order must not
// depend on the shard layout).
func TestShardedTableObservableEquivalence(t *testing.T) {
	build := func(shards int) *Store {
		s := NewStore(WithShards(shards))
		s.MustCreateTable(Schema{Name: "t", HashKey: "K", SortKey: "R"})
		for i := 0; i < 60; i++ {
			it := Item{"K": S(fmt.Sprintf("k%02d", i%12)), "R": NInt(int64(i)), "V": NInt(int64(i * i))}
			if err := s.Put("t", it, nil); err != nil {
				t.Fatal(err)
			}
		}
		// A few conditional mutations, some failing.
		for i := 0; i < 12; i++ {
			key := HSK(S(fmt.Sprintf("k%02d", i)), NInt(int64(i)))
			err := s.Update("t", key, Eq(A("V"), NInt(int64(i*i))), Set(A("V"), S("updated")))
			if err != nil {
				t.Fatal(err)
			}
			err = s.Delete("t", key, Eq(A("V"), S("nope")))
			if !errors.Is(err, ErrConditionFailed) {
				t.Fatalf("expected condition failure, got %v", err)
			}
		}
		return s
	}
	s1, s8 := build(1), build(8)
	rows1, err1 := s1.Scan("t", QueryOpts{})
	rows8, err8 := s8.Scan("t", QueryOpts{})
	if err1 != nil || err8 != nil {
		t.Fatal(err1, err8)
	}
	if len(rows1) != len(rows8) {
		t.Fatalf("scan sizes differ: %d vs %d", len(rows1), len(rows8))
	}
	for i := range rows1 {
		if !M(map[string]Value(rows1[i])).Equal(M(map[string]Value(rows8[i]))) {
			t.Fatalf("row %d differs:\n1 shard: %v\n8 shards: %v", i, rows1[i], rows8[i])
		}
	}
	n1, _ := s1.TableItemCount("t")
	n8, _ := s8.TableItemCount("t")
	b1, _ := s1.TableBytes("t")
	b8, _ := s8.TableBytes("t")
	if n1 != n8 || b1 != b8 {
		t.Fatalf("count/bytes differ: %d/%d vs %d/%d", n1, b1, n8, b8)
	}
}

// TestGroupCommitBatcherRace hammers one shard's group-commit batcher: many
// writers issuing blind and conditional updates against a single shard,
// with concurrent readers and scans. Run under -race in CI. Invariants:
// counter adds are all applied, every contested claim has exactly one
// winner, and the batcher accounts for every write.
func TestGroupCommitBatcherRace(t *testing.T) {
	s := NewStore(WithShards(1), WithGroupCommit(true))
	s.MustCreateTable(Schema{Name: "t", HashKey: "K"})

	const (
		writers    = 8
		increments = 100
		claimKeys  = 50
	)
	var wg sync.WaitGroup
	var claimWins atomic.Int64
	var writes atomic.Int64

	// Counter writers: concurrent Adds to one row must all land.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				err := s.Update("t", HK(S("counter")), nil, Add(A("N"), 1))
				if err != nil {
					t.Error(err)
					return
				}
				writes.Add(1)
			}
		}()
	}
	// Claimers: for every key, exactly one NotExists put may win even when
	// several land in the same commit batch (per-op conditions are evaluated
	// against the row state the batch predecessors left behind).
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < claimKeys; k++ {
				it := Item{"K": S(fmt.Sprintf("claim%03d", k)), "Owner": NInt(int64(w))}
				err := s.Put("t", it, NotExists(A("K")))
				writes.Add(1)
				switch {
				case err == nil:
					claimWins.Add(1)
				case errors.Is(err, ErrConditionFailed):
				default:
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers alongside: consistency smoke while batches commit.
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := s.Get("t", HK(S("counter"))); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Scan("t", QueryOpts{Limit: 5}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()

	it, ok, err := s.Get("t", HK(S("counter")))
	if err != nil || !ok {
		t.Fatalf("counter row: ok=%v err=%v", ok, err)
	}
	if got := it["N"].Int(); got != writers*increments {
		t.Errorf("counter = %d, want %d", got, writers*increments)
	}
	if got := claimWins.Load(); got != claimKeys {
		t.Errorf("claim winners = %d, want %d", got, claimKeys)
	}
	m := s.Metrics().Snapshot()
	if m.GroupCommitOps != writes.Load() {
		t.Errorf("batcher accounted %d ops, %d writes issued", m.GroupCommitOps, writes.Load())
	}
	if m.GroupCommits == 0 || m.GroupCommits > m.GroupCommitOps {
		t.Errorf("implausible batch count %d for %d ops", m.GroupCommits, m.GroupCommitOps)
	}
}

// TestGroupCommitBatchSeesPredecessorWrites aims two dependent writes at
// the batcher while a long flush holds the shard latch, so they usually
// land in one batch and B's condition must observe A's write from within
// it. Scheduling can delay A past B, in which case B legitimately fails
// its condition against the not-yet-written row — B retries until A's
// write is visible, so the test asserts the semantics (a batched op sees
// its predecessors) without asserting the timing, and the race detector
// watches the leader/follower handoff either way.
func TestGroupCommitBatchSeesPredecessorWrites(t *testing.T) {
	s := NewStore(WithShards(1), WithGroupCommit(true),
		WithLatency(CommitCost{Flush: 20 * time.Millisecond}))
	s.MustCreateTable(Schema{Name: "t", HashKey: "K"})

	// Occupy the batcher: the blocker's batch holds the latch ~20ms.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Put("t", Item{"K": S("blocker")}, nil); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(2 * time.Millisecond)

	// A and B enqueue behind the blocker; B's condition only passes once it
	// evaluates against A's write.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Put("t", Item{"K": S("dep"), "V": NInt(1)}, NotExists(A("K"))); err != nil {
			t.Error("A:", err)
		}
	}()
	time.Sleep(2 * time.Millisecond)
	var errB error
	for deadline := time.Now().Add(5 * time.Second); ; {
		errB = s.Update("t", HK(S("dep")), Eq(A("V"), NInt(1)), Set(A("V"), NInt(2)))
		if !errors.Is(errB, ErrConditionFailed) || time.Now().After(deadline) {
			break
		}
	}
	wg.Wait()
	if errB != nil {
		t.Fatalf("B never saw A's write: %v", errB)
	}
	it, _, err := s.Get("t", HK(S("dep")))
	if err != nil || it["V"].Int() != 2 {
		t.Fatalf("final value %v, err %v", it["V"], err)
	}
}

// TestTransactWriteAcrossShardsRace runs concurrent cross-shard transfers
// (guarded TransactWrites) against the batched single-row path and asserts
// the conserved-sum invariant — the tx path locks shard sets in global
// order while group commit holds one shard at a time, so they must compose
// without deadlock or lost updates.
func TestTransactWriteAcrossShardsRace(t *testing.T) {
	s := NewStore(WithShards(8), WithGroupCommit(true))
	s.MustCreateTable(Schema{Name: "acct", HashKey: "K"})
	const accounts = 6
	const total = accounts * 100
	for i := 0; i < accounts; i++ {
		if err := s.Put("acct", Item{"K": S(fmt.Sprintf("a%d", i)), "Bal": NInt(100)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				from := fmt.Sprintf("a%d", (w+i)%accounts)
				to := fmt.Sprintf("a%d", (w+i+1)%accounts)
				err := s.TransactWrite([]TxOp{
					{Table: "acct", Key: HK(S(from)), Cond: Ge(A("Bal"), NInt(1)),
						Updates: []Update{Add(A("Bal"), -1)}},
					{Table: "acct", Key: HK(S(to)),
						Updates: []Update{Add(A("Bal"), 1)}},
				})
				if err != nil && !errors.Is(err, ErrConditionFailed) {
					t.Error(err)
					return
				}
				// Interleave a batched single-row write on the same table.
				if err := s.Update("acct", HK(S("scratch")), nil, Add(A("N"), 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	rows, err := s.Scan("acct", QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	sum := int64(0)
	for _, r := range rows {
		if r["K"].Str() == "scratch" {
			continue
		}
		sum += r["Bal"].Int()
	}
	if sum != total {
		t.Errorf("balance sum = %d, want %d", sum, total)
	}
}
