package dynamo

import (
	"fmt"
	"testing"
	"time"
)

func TestZeroLatency(t *testing.T) {
	var m ZeroLatency
	if d := m.OpLatency(OpGet, 10, 1000); d != 0 {
		t.Errorf("zero latency = %v", d)
	}
}

func TestCloudLatencyScalesAndCharges(t *testing.T) {
	m := NewCloudLatency(1.0, 42)
	m.Jitter = 0
	m.TailP = 0
	get := m.OpLatency(OpGet, 1, 0)
	if get != m.Base[OpGet]+m.PerItem {
		t.Errorf("get = %v", get)
	}
	// Per-item and per-KB surcharges.
	scan1 := m.OpLatency(OpScan, 1, 0)
	scan20 := m.OpLatency(OpScan, 20, 4096)
	if scan20 <= scan1 {
		t.Errorf("scan fan-out not charged: %v vs %v", scan1, scan20)
	}
	// Scale compresses proportionally.
	half := NewCloudLatency(0.5, 42)
	half.Jitter = 0
	half.TailP = 0
	if got := half.OpLatency(OpGet, 1, 0); got != get/2 {
		t.Errorf("scaled get = %v, want %v", got, get/2)
	}
}

func TestCloudLatencyJitterBounded(t *testing.T) {
	m := NewCloudLatency(1.0, 7)
	m.TailP = 0
	base := m.Base[OpGet] + m.PerItem
	for i := 0; i < 500; i++ {
		d := m.OpLatency(OpGet, 1, 0)
		lo := time.Duration(float64(base) * (1 - m.Jitter - 0.001))
		hi := time.Duration(float64(base) * (1 + m.Jitter + 0.001))
		if d < lo || d > hi {
			t.Fatalf("sample %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestCloudLatencyTailEvents(t *testing.T) {
	m := NewCloudLatency(1.0, 9)
	m.Jitter = 0
	m.TailP = 0.5
	m.TailMult = 10
	base := m.Base[OpGet] + m.PerItem
	tails := 0
	for i := 0; i < 400; i++ {
		if m.OpLatency(OpGet, 1, 0) > 2*base {
			tails++
		}
	}
	if tails < 100 || tails > 300 {
		t.Errorf("tail events = %d/400 at P=0.5", tails)
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpKind(0); k < opKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("op %d has no name", k)
		}
	}
	if OpKind(200).String() != "unknown" {
		t.Error("out-of-range op named")
	}
}

func TestGetProjTrafficAccounting(t *testing.T) {
	// The §7.3 network claim rests on projections reducing charged bytes.
	s := NewStore()
	s.MustCreateTable(Schema{Name: "t", HashKey: "K"})
	big := Item{"K": S("a"), "V": S(string(make([]byte, 4096))), "Tag": S("x")}
	if err := s.Put("t", big, nil); err != nil {
		t.Fatal(err)
	}
	before := s.Metrics().Snapshot()
	it, ok, err := s.GetProj("t", HK(S("a")), []Path{A("Tag")})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if _, has := it["V"]; has {
		t.Error("projection leaked V")
	}
	full := s.Metrics().Snapshot()
	projBytes := full.Sub(before).BytesRead
	s.Get("t", HK(S("a")))
	fullBytes := s.Metrics().Snapshot().Sub(full).BytesRead
	if projBytes*10 > fullBytes {
		t.Errorf("projection read %d bytes, full read %d — projection not cheap", projBytes, fullBytes)
	}
}

func TestCommitCostShapeIsPinned(t *testing.T) {
	c := CommitCost{Flush: 10 * time.Millisecond, PerOp: time.Millisecond}
	// The shape commit pipelining amortizes: Flush once per batch plus
	// PerOp per operation. Pinned so the pipeline committer's
	// ModelCommitLatency accounting and the in-latch commitSleep charge can
	// never drift apart.
	for _, tc := range []struct {
		ops  int
		want time.Duration
	}{{1, 11 * time.Millisecond}, {8, 18 * time.Millisecond}, {128, 138 * time.Millisecond}} {
		if got := c.CommitLatency(tc.ops); got != tc.want {
			t.Errorf("CommitLatency(%d) = %v, want %v", tc.ops, got, tc.want)
		}
	}
}

func TestModelCommitLatencyExposesTheModel(t *testing.T) {
	s := NewStore(WithLatency(CommitCost{Flush: 4 * time.Millisecond, PerOp: time.Millisecond}))
	if got, want := s.ModelCommitLatency(6), 10*time.Millisecond; got != want {
		t.Errorf("ModelCommitLatency(6) = %v, want %v", got, want)
	}
	// Models without a commit cost (the default) report zero.
	if got := NewStore().ModelCommitLatency(6); got != 0 {
		t.Errorf("ZeroLatency ModelCommitLatency = %v, want 0", got)
	}
}

func TestTransactWriteChargesCommitCostPerBatch(t *testing.T) {
	// TransactWrite charges CommitLatency once for the whole batch — not
	// once per op — which is exactly the amortization ModelCommitLatency
	// lets the pipeline committer account for.
	const flush = 30 * time.Millisecond
	s := NewStore(WithLatency(CommitCost{Flush: flush}))
	s.MustCreateTable(Schema{Name: "kv", HashKey: "K"})
	ops := make([]TxOp, 8)
	for i := range ops {
		ops[i] = TxOp{Table: "kv", Put: Item{"K": S(fmt.Sprintf("k%d", i)), "V": NInt(int64(i))}}
	}
	start := time.Now()
	if err := s.TransactWrite(ops); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < flush {
		t.Errorf("TransactWrite took %v, want >= one flush (%v)", elapsed, flush)
	}
	if elapsed >= time.Duration(len(ops))*flush {
		t.Errorf("TransactWrite took %v: flush charged per op, not per batch", elapsed)
	}
}
