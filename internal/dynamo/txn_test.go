package dynamo

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTxnStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	s.MustCreateTable(Schema{Name: "data", HashKey: "K"})
	s.MustCreateTable(Schema{Name: "log", HashKey: "Id", SortKey: "Step"})
	return s
}

func TestTransactWriteAllOrNothing(t *testing.T) {
	s := newTxnStore(t)
	// The cross-table-txn comparator's shape: write data + append log
	// atomically across two tables.
	err := s.TransactWrite([]TxOp{
		{Table: "data", Key: HK(S("x")), Updates: []Update{Set(A("V"), N(1))}},
		{Table: "log", Key: HSK(S("i1"), N(0)), Cond: NotExists(A("Id")),
			Updates: []Update{Set(A("Done"), Bool(true))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if it, ok, _ := s.Get("data", HK(S("x"))); !ok || it["V"].Num() != 1 {
		t.Fatalf("data row: %v %v", it, ok)
	}
	if _, ok, _ := s.Get("log", HSK(S("i1"), N(0))); !ok {
		t.Fatal("log row missing")
	}

	// Replay: the log condition fails, so the data write must not happen.
	err = s.TransactWrite([]TxOp{
		{Table: "data", Key: HK(S("x")), Updates: []Update{Set(A("V"), N(2))}},
		{Table: "log", Key: HSK(S("i1"), N(0)), Cond: NotExists(A("Id")),
			Updates: []Update{Set(A("Done"), Bool(true))}},
	})
	var canceled *TxCanceledError
	if !errors.As(err, &canceled) {
		t.Fatalf("want TxCanceledError, got %v", err)
	}
	if !errors.Is(err, ErrConditionFailed) {
		t.Error("canceled txn should satisfy errors.Is(ErrConditionFailed)")
	}
	if canceled.Reasons[0] != nil || canceled.Reasons[1] == nil {
		t.Errorf("reasons = %v", canceled.Reasons)
	}
	if it, _, _ := s.Get("data", HK(S("x"))); it["V"].Num() != 1 {
		t.Error("canceled txn applied a write")
	}
}

func TestTransactWritePutAndDelete(t *testing.T) {
	s := newTxnStore(t)
	mustPut(t, s, "data", Item{"K": S("old"), "V": N(1)})
	err := s.TransactWrite([]TxOp{
		{Table: "data", Put: Item{"K": S("new"), "V": N(2)}},
		{Table: "data", Key: HK(S("old")), Delete: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("data", HK(S("old"))); ok {
		t.Error("old survived")
	}
	if _, ok, _ := s.Get("data", HK(S("new"))); !ok {
		t.Error("new missing")
	}
}

func TestTransactWriteRejectsDuplicateTargets(t *testing.T) {
	s := newTxnStore(t)
	err := s.TransactWrite([]TxOp{
		{Table: "data", Key: HK(S("x")), Updates: []Update{Set(A("V"), N(1))}},
		{Table: "data", Key: HK(S("x")), Updates: []Update{Set(A("V"), N(2))}},
	})
	if err == nil {
		t.Fatal("duplicate targets accepted")
	}
}

func TestTransactWriteEmptyAndMissingTable(t *testing.T) {
	s := newTxnStore(t)
	if err := s.TransactWrite(nil); err != nil {
		t.Errorf("empty txn: %v", err)
	}
	err := s.TransactWrite([]TxOp{{Table: "nope", Key: HK(S("x")), Updates: []Update{Set(A("V"), N(1))}}})
	if !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table: %v", err)
	}
}

func TestTransactWriteConcurrentInvariant(t *testing.T) {
	// Two accounts, concurrent transfers each conditioned on sufficient
	// balance; the sum must be conserved — the atomicity the travel app's
	// cross-SSF transaction ultimately depends on.
	s := newTxnStore(t)
	mustPut(t, s, "data", Item{"K": S("a"), "V": N(100)})
	mustPut(t, s, "data", Item{"K": S("b"), "V": N(100)})
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			from, to := "a", "b"
			if i%2 == 0 {
				from, to = "b", "a"
			}
			// Optimistic loop: read, then conditional transfer.
			for try := 0; try < 20; try++ {
				cur, _, err := s.Get("data", HK(S(from)))
				if err != nil {
					t.Error(err)
					return
				}
				bal := cur["V"].Num()
				if bal < 1 {
					return
				}
				err = s.TransactWrite([]TxOp{
					{Table: "data", Key: HK(S(from)), Cond: Eq(A("V"), N(bal)),
						Updates: []Update{Add(A("V"), -1)}},
					{Table: "data", Key: HK(S(to)),
						Updates: []Update{Add(A("V"), 1)}},
				})
				if err == nil {
					return
				}
				if !errors.Is(err, ErrConditionFailed) {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	a, _, _ := s.Get("data", HK(S("a")))
	b, _, _ := s.Get("data", HK(S("b")))
	if total := a["V"].Num() + b["V"].Num(); total != 200 {
		t.Errorf("sum = %v, want 200", total)
	}
}

func TestTransactWriteManyTablesNoDeadlock(t *testing.T) {
	// Transactions spanning overlapping table sets, launched concurrently,
	// must not deadlock (ordered locking).
	s := NewStore()
	for i := 0; i < 4; i++ {
		s.MustCreateTable(Schema{Name: fmt.Sprintf("t%d", i), HashKey: "K"})
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a := fmt.Sprintf("t%d", (w+i)%4)
				b := fmt.Sprintf("t%d", (w+i+1)%4)
				err := s.TransactWrite([]TxOp{
					{Table: a, Key: HK(S("k")), Updates: []Update{Add(A("N"), 1)}},
					{Table: b, Key: HK(S("k")), Updates: []Update{Add(A("N"), 1)}},
				})
				if err != nil {
					t.Errorf("txn: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total float64
	for i := 0; i < 4; i++ {
		it, _, _ := s.Get(fmt.Sprintf("t%d", i), HK(S("k")))
		total += it["N"].Num()
	}
	if total != 16*50*2 {
		t.Errorf("total increments = %v, want %d", total, 16*50*2)
	}
}
