package platform

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/queue"
)

func newMapperRig(t *testing.T, qopts queue.Options, popts Options, eopts EventSourceOptions) (*queue.Broker, *Platform, *Mapper) {
	t.Helper()
	broker := queue.NewBroker(queue.BrokerOptions{Store: dynamo.NewStore()})
	broker.MustCreate(eopts.Queue, qopts)
	plat := New(popts)
	m := MustNewMapper(broker, plat, eopts)
	return broker, plat, m
}

func TestMapperDeliversBatchAndAcks(t *testing.T) {
	broker, plat, m := newMapperRig(t, queue.Options{}, Options{},
		EventSourceOptions{Queue: "q", Function: "consume", BatchSize: 4})

	var got sync.Map
	plat.Register("consume", func(inv *Invocation, input Value) (Value, error) {
		got.Store(input.Str(), true)
		return dynamo.Null, nil
	}, 0)

	for _, s := range []string{"a", "b", "c"} {
		if _, err := broker.Enqueue("q", dynamo.S(s)); err != nil {
			t.Fatal(err)
		}
	}
	processed, failed, err := m.PollOnce()
	if err != nil || processed != 3 || failed != 0 {
		t.Fatalf("PollOnce = (%d, %d, %v), want (3, 0, nil)", processed, failed, err)
	}
	for _, s := range []string{"a", "b", "c"} {
		if _, ok := got.Load(s); !ok {
			t.Fatalf("message %q not delivered", s)
		}
	}
	if n, _ := broker.Depth("q"); n != 0 {
		t.Fatalf("queue depth = %d after successful batch, want 0", n)
	}
	if m.Metrics().Delivered.Load() != 3 {
		t.Fatalf("Delivered = %d, want 3", m.Metrics().Delivered.Load())
	}
}

func TestMapperBatchSizeCapsClaims(t *testing.T) {
	broker, plat, m := newMapperRig(t, queue.Options{VisibilityTimeout: time.Hour}, Options{},
		EventSourceOptions{Queue: "q", Function: "consume", BatchSize: 2})
	plat.Register("consume", func(inv *Invocation, input Value) (Value, error) {
		return dynamo.Null, nil
	}, 0)
	for i := 0; i < 5; i++ {
		if _, err := broker.Enqueue("q", dynamo.NInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for want := 5; want > 0; want -= 2 {
		processed, _, err := m.PollOnce()
		if err != nil {
			t.Fatal(err)
		}
		expect := 2
		if want < 2 {
			expect = want
		}
		if processed != expect {
			t.Fatalf("PollOnce processed %d, want %d", processed, expect)
		}
	}
}

func TestMapperCrashedConsumerLeavesMessageInFlight(t *testing.T) {
	broker, plat, m := newMapperRig(t, queue.Options{VisibilityTimeout: 50 * time.Millisecond}, Options{},
		EventSourceOptions{Queue: "q", Function: "consume", BatchSize: 1})

	var calls atomic.Int64
	plat.SetFaults(&CrashOnce{Function: "consume", Label: "work"})
	plat.Register("consume", func(inv *Invocation, input Value) (Value, error) {
		calls.Add(1)
		inv.CrashPoint("work")
		return dynamo.Null, nil
	}, 0)

	if _, err := broker.Enqueue("q", dynamo.S("x")); err != nil {
		t.Fatal(err)
	}
	processed, failed, err := m.PollOnce()
	if err != nil || processed != 0 || failed != 1 {
		t.Fatalf("PollOnce = (%d, %d, %v), want (0, 1, nil)", processed, failed, err)
	}
	// The dead consumer cannot nack: the message stays in flight...
	if processed, _, _ := m.PollOnce(); processed != 0 {
		t.Fatal("message visible again before the visibility timeout")
	}
	// ...until the claim expires, then redelivery succeeds.
	deadline := time.Now().Add(2 * time.Second)
	for {
		processed, _, err := m.PollOnce()
		if err != nil {
			t.Fatal(err)
		}
		if processed == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message never redelivered after visibility timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if calls.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2 (crash, then redelivery)", calls.Load())
	}
	if n, _ := broker.Depth("q"); n != 0 {
		t.Fatalf("depth = %d after successful redelivery, want 0", n)
	}
}

func TestMapperNackOnErrorRedeliversImmediately(t *testing.T) {
	broker, plat, m := newMapperRig(t, queue.Options{VisibilityTimeout: time.Hour}, Options{},
		EventSourceOptions{Queue: "q", Function: "consume", BatchSize: 1, NackOnError: true})

	var calls atomic.Int64
	plat.SetFaults(&CrashOnce{Function: "consume", Label: "work"})
	plat.Register("consume", func(inv *Invocation, input Value) (Value, error) {
		calls.Add(1)
		inv.CrashPoint("work")
		return dynamo.Null, nil
	}, 0)
	if _, err := broker.Enqueue("q", dynamo.S("x")); err != nil {
		t.Fatal(err)
	}
	if _, failed, _ := m.PollOnce(); failed != 1 {
		t.Fatal("expected first delivery to fail")
	}
	// NackOnError returned it immediately, despite the hour-long timeout.
	processed, _, err := m.PollOnce()
	if err != nil || processed != 1 {
		t.Fatalf("redelivery = (%d, %v), want (1, nil)", processed, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2", calls.Load())
	}
}

func TestMapperThrottledDeliveryNacksAndRetries(t *testing.T) {
	broker, plat, m := newMapperRig(t, queue.Options{VisibilityTimeout: time.Hour},
		Options{ConcurrencyLimit: 1, RejectWhenSaturated: true},
		EventSourceOptions{Queue: "q", Function: "consume", BatchSize: 1})

	release := make(chan struct{})
	var done sync.WaitGroup
	plat.Register("hog", func(inv *Invocation, input Value) (Value, error) {
		<-release
		return dynamo.Null, nil
	}, 0)
	var delivered atomic.Int64
	plat.Register("consume", func(inv *Invocation, input Value) (Value, error) {
		delivered.Add(1)
		return dynamo.Null, nil
	}, 0)

	// Saturate the account, then poll: the delivery is throttled and the
	// message nacked back to visible.
	done.Add(1)
	go func() {
		defer done.Done()
		plat.Invoke("hog", dynamo.Null) //nolint:errcheck
	}()
	for plat.Metrics().Invocations.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := broker.Enqueue("q", dynamo.S("x")); err != nil {
		t.Fatal(err)
	}
	processed, failed, err := m.PollOnce()
	if err != nil || processed != 0 || failed != 1 {
		t.Fatalf("PollOnce under saturation = (%d, %d, %v), want (0, 1, nil)", processed, failed, err)
	}
	if n, _ := broker.Len("q"); n != 1 {
		t.Fatalf("throttled message not visible for retry (len=%d)", n)
	}
	close(release)
	done.Wait()
	processed, _, err = m.PollOnce()
	if err != nil || processed != 1 || delivered.Load() != 1 {
		t.Fatalf("post-throttle redelivery = (%d, %v), delivered=%d", processed, err, delivered.Load())
	}
}

func TestMapperDeliversUnderBlockingSaturation(t *testing.T) {
	// On a platform with blocking admission (the default), a saturated
	// account must not park delivery goroutines while their visibility
	// claims tick away: triggers run with internal admission and complete.
	broker, plat, m := newMapperRig(t, queue.Options{VisibilityTimeout: 50 * time.Millisecond},
		Options{ConcurrencyLimit: 1},
		EventSourceOptions{Queue: "q", Function: "consume", BatchSize: 2})
	release := make(chan struct{})
	var hogDone sync.WaitGroup
	plat.Register("hog", func(inv *Invocation, input Value) (Value, error) {
		<-release
		return dynamo.Null, nil
	}, 0)
	var delivered atomic.Int64
	plat.Register("consume", func(inv *Invocation, input Value) (Value, error) {
		delivered.Add(1)
		return dynamo.Null, nil
	}, 0)
	hogDone.Add(1)
	go func() {
		defer hogDone.Done()
		plat.Invoke("hog", dynamo.Null) //nolint:errcheck
	}()
	for plat.Metrics().Invocations.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if _, err := broker.Enqueue("q", dynamo.NInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		processed, failed, err := m.PollOnce()
		if err != nil || processed != 2 || failed != 0 {
			t.Errorf("PollOnce under blocking saturation = (%d, %d, %v), want (2, 0, nil)", processed, failed, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("PollOnce blocked in entry admission while holding visibility claims")
	}
	if delivered.Load() != 2 {
		t.Fatalf("delivered %d, want 2", delivered.Load())
	}
	if b := broker.Metrics().Redelivered.Load(); b != 0 {
		t.Fatalf("burned %d redeliveries under saturation", b)
	}
	close(release)
	hogDone.Wait()
}

func TestMapperStartStopBackgroundLoop(t *testing.T) {
	broker, plat, m := newMapperRig(t, queue.Options{}, Options{},
		EventSourceOptions{Queue: "q", Function: "consume", BatchSize: 8, PollInterval: time.Millisecond})
	var n atomic.Int64
	plat.Register("consume", func(inv *Invocation, input Value) (Value, error) {
		n.Add(1)
		return dynamo.Null, nil
	}, 0)
	m.Start()
	m.Start() // idempotent
	defer m.Stop()
	for i := 0; i < 20; i++ {
		if _, err := broker.Enqueue("q", dynamo.NInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("background loop delivered %d/20", n.Load())
		}
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	if depth, _ := broker.Depth("q"); depth != 0 {
		t.Fatalf("depth = %d after drain, want 0", depth)
	}
}

func TestMapperPoisonMessageDeadLetters(t *testing.T) {
	broker, plat, m := newMapperRig(t,
		queue.Options{VisibilityTimeout: time.Hour, MaxReceives: 3},
		Options{},
		EventSourceOptions{Queue: "q", Function: "consume", BatchSize: 1, NackOnError: true})
	var calls atomic.Int64
	plat.Register("consume", func(inv *Invocation, input Value) (Value, error) {
		calls.Add(1)
		inv.Kill("poison") // crashes on every delivery
		return dynamo.Null, nil
	}, 0)
	if _, err := broker.Enqueue("q", dynamo.S("poison")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := m.PollOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("poison handler ran %d times, want 3 (the budget)", calls.Load())
	}
	dead, err := broker.DeadLetters("q")
	if err != nil || len(dead) != 1 {
		t.Fatalf("DeadLetters = %v, %v; want the poison message", dead, err)
	}
	if n, _ := broker.Depth("q"); n != 0 {
		t.Fatalf("depth = %d, want 0 after dead-lettering", n)
	}
}

func TestMapperRequiresQueueAndFunction(t *testing.T) {
	broker := queue.NewBroker(queue.BrokerOptions{Store: dynamo.NewStore()})
	if _, err := NewMapper(broker, New(Options{}), EventSourceOptions{Queue: "q"}); err == nil {
		t.Fatal("NewMapper accepted a mapping without a function")
	}
	if _, err := NewMapper(broker, New(Options{}), EventSourceOptions{Function: "f"}); err == nil {
		t.Fatal("NewMapper accepted a mapping without a queue")
	}
}
