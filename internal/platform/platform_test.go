package platform

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/uuid"
)

func echoHandler(_ *Invocation, in Value) (Value, error) { return in, nil }

func TestInvokeRoundTrip(t *testing.T) {
	p := New(Options{})
	p.Register("echo", echoHandler, 0)
	out, err := p.Invoke("echo", dynamo.S("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Str() != "hi" {
		t.Errorf("out = %v", out)
	}
	if _, err := p.Invoke("nope", dynamo.Null); !errors.Is(err, ErrNoSuchFunction) {
		t.Errorf("missing fn: %v", err)
	}
}

func TestRequestIDsUniqueAndDeterministicSource(t *testing.T) {
	p := New(Options{IDs: &uuid.Seq{Prefix: "req"}})
	var mu sync.Mutex
	var ids []string
	p.Register("f", func(inv *Invocation, _ Value) (Value, error) {
		mu.Lock()
		ids = append(ids, inv.RequestID)
		mu.Unlock()
		return dynamo.Null, nil
	}, 0)
	for i := 0; i < 3; i++ {
		if _, err := p.Invoke("f", dynamo.Null); err != nil {
			t.Fatal(err)
		}
	}
	if len(ids) != 3 || ids[0] != "req-000000000001" || ids[0] == ids[1] {
		t.Errorf("ids = %v", ids)
	}
}

func TestInvokeAsyncRuns(t *testing.T) {
	p := New(Options{})
	var ran atomic.Bool
	p.Register("bg", func(*Invocation, Value) (Value, error) {
		ran.Store(true)
		return dynamo.Null, nil
	}, 0)
	if err := p.InvokeAsync("bg", dynamo.Null); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	if !ran.Load() {
		t.Error("async handler never ran")
	}
	if err := p.InvokeAsync("nope", dynamo.Null); !errors.Is(err, ErrNoSuchFunction) {
		t.Errorf("missing fn: %v", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	p := New(Options{})
	boom := errors.New("boom")
	p.Register("bad", func(*Invocation, Value) (Value, error) {
		return dynamo.Null, boom
	}, 0)
	if _, err := p.Invoke("bad", dynamo.Null); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestCrashInjectionAndRecovery(t *testing.T) {
	plan := &CrashOnce{Function: "w", Label: "mid"}
	p := New(Options{Faults: plan})
	var attempts atomic.Int64
	p.Register("w", func(inv *Invocation, _ Value) (Value, error) {
		attempts.Add(1)
		inv.CrashPoint("mid")
		return dynamo.S("done"), nil
	}, 0)

	_, err := p.Invoke("w", dynamo.Null)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("first invoke: %v", err)
	}
	if !plan.Fired() {
		t.Fatal("plan did not fire")
	}
	out, err := p.Invoke("w", dynamo.Null)
	if err != nil || out.Str() != "done" {
		t.Fatalf("second invoke: %v %v", out, err)
	}
	if attempts.Load() != 2 {
		t.Errorf("attempts = %d", attempts.Load())
	}
	if p.Metrics().Crashes.Load() != 1 {
		t.Errorf("crash count = %d", p.Metrics().Crashes.Load())
	}
}

func TestApplicationPanicBecomesCrash(t *testing.T) {
	p := New(Options{})
	p.Register("p", func(*Invocation, Value) (Value, error) {
		panic("application bug")
	}, 0)
	if _, err := p.Invoke("p", dynamo.Null); !errors.Is(err, ErrCrashed) {
		t.Errorf("panic: %v", err)
	}
}

func TestKill(t *testing.T) {
	p := New(Options{})
	p.Register("k", func(inv *Invocation, _ Value) (Value, error) {
		inv.Kill("deliberate")
		return dynamo.Null, nil
	}, 0)
	if _, err := p.Invoke("k", dynamo.Null); !errors.Is(err, ErrCrashed) {
		t.Errorf("kill: %v", err)
	}
}

func TestTimeoutKillsAtCrashPoint(t *testing.T) {
	p := New(Options{})
	var reachedEnd atomic.Bool
	p.Register("slow", func(inv *Invocation, _ Value) (Value, error) {
		time.Sleep(50 * time.Millisecond)
		inv.CrashPoint("after-sleep") // deadline passed: instance dies here
		reachedEnd.Store(true)
		return dynamo.Null, nil
	}, 10*time.Millisecond)
	_, err := p.Invoke("slow", dynamo.Null)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	if reachedEnd.Load() {
		t.Error("instance survived past its deadline")
	}
}

func TestConcurrencyLimitQueues(t *testing.T) {
	p := New(Options{ConcurrencyLimit: 2})
	var inFlight, maxInFlight atomic.Int64
	p.Register("busy", func(*Invocation, Value) (Value, error) {
		cur := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		inFlight.Add(-1)
		return dynamo.Null, nil
	}, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Invoke("busy", dynamo.Null); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if maxInFlight.Load() > 2 {
		t.Errorf("max in flight = %d, want <= 2", maxInFlight.Load())
	}
}

func TestConcurrencyLimitRejects(t *testing.T) {
	p := New(Options{ConcurrencyLimit: 1, RejectWhenSaturated: true})
	release := make(chan struct{})
	p.Register("hold", func(*Invocation, Value) (Value, error) {
		<-release
		return dynamo.Null, nil
	}, 0)
	done := make(chan error, 1)
	go func() {
		_, err := p.Invoke("hold", dynamo.Null)
		done <- err
	}()
	// Wait until the first invocation occupies the slot.
	for i := 0; i < 100 && p.Metrics().Invocations.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	_, err := p.Invoke("hold", dynamo.Null)
	if !errors.Is(err, ErrThrottled) {
		t.Errorf("second invoke: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Error(err)
	}
	if p.Metrics().Throttles.Load() != 1 {
		t.Errorf("throttles = %d", p.Metrics().Throttles.Load())
	}
}

func TestColdWarmStarts(t *testing.T) {
	p := New(Options{ColdStart: time.Millisecond, WarmStart: 0})
	p.Register("f", echoHandler, 0)
	p.Invoke("f", dynamo.Null)
	p.Invoke("f", dynamo.Null)
	p.Invoke("f", dynamo.Null)
	if got := p.Metrics().ColdStarts.Load(); got != 1 {
		t.Errorf("cold starts = %d, want 1 (sequential invokes reuse the warm worker)", got)
	}
	// Two simultaneous invocations need two workers: one more cold start.
	block := make(chan struct{})
	p.Register("g", func(*Invocation, Value) (Value, error) {
		<-block
		return dynamo.Null, nil
	}, 0)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Invoke("g", dynamo.Null)
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(block)
	wg.Wait()
	if got := p.Metrics().ColdStarts.Load(); got != 3 {
		t.Errorf("cold starts = %d, want 3", got)
	}
}

func TestDriverFunctionComposition(t *testing.T) {
	// A driver function invoking two other functions — the workflow
	// composition style from §2.1.
	p := New(Options{})
	p.Register("add1", func(_ *Invocation, in Value) (Value, error) {
		return dynamo.N(in.Num() + 1), nil
	}, 0)
	p.Register("double", func(_ *Invocation, in Value) (Value, error) {
		return dynamo.N(in.Num() * 2), nil
	}, 0)
	p.Register("driver", func(inv *Invocation, in Value) (Value, error) {
		a, err := inv.Platform().Invoke("add1", in)
		if err != nil {
			return dynamo.Null, err
		}
		return inv.Platform().Invoke("double", a)
	}, 0)
	out, err := p.Invoke("driver", dynamo.N(5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Num() != 12 {
		t.Errorf("out = %v, want 12", out)
	}
}

func TestCrashNthOpSweep(t *testing.T) {
	// Count ops, then crash at each in turn; the function has 3 crash
	// points.
	counter := &OpCounter{}
	p := New(Options{Faults: counter})
	handler := func(inv *Invocation, _ Value) (Value, error) {
		inv.CrashPoint("a")
		inv.CrashPoint("b")
		inv.CrashPoint("c")
		return dynamo.S("ok"), nil
	}
	p.Register("f", handler, 0)
	if _, err := p.Invoke("f", dynamo.Null); err != nil {
		t.Fatal(err)
	}
	if counter.Max("f") != 3 {
		t.Fatalf("op count = %d", counter.Max("f"))
	}
	for n := 1; n <= 3; n++ {
		plan := &CrashNthOp{Function: "f", N: n}
		p2 := New(Options{Faults: plan})
		p2.Register("f", handler, 0)
		if _, err := p2.Invoke("f", dynamo.Null); !errors.Is(err, ErrCrashed) {
			t.Errorf("n=%d: %v", n, err)
		}
		// Re-execution succeeds (plan disarmed).
		if out, err := p2.Invoke("f", dynamo.Null); err != nil || out.Str() != "ok" {
			t.Errorf("n=%d retry: %v %v", n, out, err)
		}
	}
}

func TestCrashProbRespectsFunctionFilter(t *testing.T) {
	plan := &CrashProb{Function: "target", P: 1.0}
	if plan.ShouldCrash("other", "x", 1) {
		t.Error("crashed wrong function")
	}
	if !plan.ShouldCrash("target", "x", 1) {
		t.Error("did not crash target with P=1")
	}
}

func TestPlansComposite(t *testing.T) {
	a := &CrashOnce{Function: "f", Label: "x"}
	b := &CrashOnce{Function: "g", Label: "y"}
	ps := Plans{a, b}
	if !ps.ShouldCrash("f", "x", 1) || !ps.ShouldCrash("g", "y", 1) {
		t.Error("composite missed")
	}
	if ps.ShouldCrash("f", "x", 1) {
		t.Error("CrashOnce fired twice under composite")
	}
}
