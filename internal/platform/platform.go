// Package platform is an in-process serverless platform: the slice of AWS
// Lambda that Beldi depends on (§2.1 of the paper). It provides a function
// registry, synchronous and asynchronous invocation, a per-account
// concurrency ceiling (1,000 on AWS, the saturation bottleneck in the
// paper's Figures 14/15/26), per-function execution timeouts, cold/warm
// start latency, a fresh instance per invocation (stateless routing), and —
// crucially for testing Beldi — a programmable fault injector that can kill
// an instance at any operation boundary.
//
// The platform performs no automatic retries: like the paper's experimental
// setup ("we turn off automatic Lambda restarts"), recovery is entirely the
// job of Beldi's intent collectors.
package platform

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dynamo"
	"repro/internal/uuid"
)

// Value is the invocation payload type (shared with the store substrate so
// applications move one value model end to end).
type Value = dynamo.Value

// Handler is a function's entry point. Input is the invocation payload;
// the returned Value is delivered to synchronous callers.
type Handler func(inv *Invocation, input Value) (Value, error)

// Platform errors.
var (
	// ErrNoSuchFunction reports an invocation of an unregistered function.
	ErrNoSuchFunction = errors.New("platform: no such function")
	// ErrCrashed reports that the invoked instance died mid-execution
	// (injected fault or runtime panic). State may be partially mutated —
	// exactly the failure Beldi exists to mask.
	ErrCrashed = errors.New("platform: function instance crashed")
	// ErrTimeout reports that the instance exceeded its execution timeout
	// and was killed by the platform.
	ErrTimeout = errors.New("platform: function timed out")
	// ErrThrottled reports rejection at the concurrency ceiling when the
	// platform is configured to reject rather than queue.
	ErrThrottled = errors.New("platform: concurrency limit exceeded")
	// ErrCanceled reports that the invocation's context was canceled (or its
	// deadline expired) and the instance was killed at its next operation
	// boundary — the context-first analogue of ErrTimeout. Like any other
	// instance death, partial state is left for Beldi's collectors to
	// resolve: cancellation never weakens exactly-once.
	ErrCanceled = errors.New("platform: invocation canceled")
)

// Options configure a Platform.
type Options struct {
	// ConcurrencyLimit caps simultaneously running instances across all
	// functions (AWS's per-account limit; the paper hits 1,000). 0 means
	// DefaultConcurrencyLimit.
	ConcurrencyLimit int
	// RejectWhenSaturated makes invocations beyond the limit fail with
	// ErrThrottled instead of queueing.
	RejectWhenSaturated bool
	// DefaultTimeout bounds each instance's execution; 0 disables timeouts.
	// Instances are killed at the next operation boundary after expiry,
	// matching how Beldi's GC synchrony assumption treats the user-defined
	// timeout as the bound T (§5).
	DefaultTimeout time.Duration
	// ColdStart and WarmStart are invocation dispatch latencies. A warm
	// instance is reused when one is idle; otherwise the invocation pays
	// ColdStart.
	ColdStart time.Duration
	WarmStart time.Duration
	// HandlerCompute models the handler's own execution time (parsing,
	// business logic) independent of storage and invocation round trips;
	// applied with Jitter to every instance.
	HandlerCompute time.Duration
	// Jitter is the ± fraction of uniform noise applied to start latencies.
	Jitter float64
	// Seed seeds the jitter source.
	Seed int64
	// IDs generates request ids; nil means crypto/rand UUIDs.
	IDs uuid.Source
	// Faults is the crash plan consulted at every CrashPoint; nil disables
	// injection.
	Faults FaultPlan
	// AsyncDispatch, when non-nil, runs asynchronous invocations instead of
	// `go run()` — the scheduling seam deterministic simulators use to turn
	// fire-and-forget handoffs into schedulable tasks. run must be called
	// exactly once (on any goroutine).
	AsyncDispatch func(run func())
}

// DefaultConcurrencyLimit mirrors the AWS limit in the paper's evaluation.
const DefaultConcurrencyLimit = 1000

// Platform runs registered functions.
type Platform struct {
	opts Options

	mu  sync.RWMutex
	fns map[string]*function

	running atomic.Int64 // instances in flight, entry and internal
	ids     uuid.Source
	rng     *lockedRand
	metrics Metrics

	faultsMu sync.RWMutex
	faults   FaultPlan

	wg sync.WaitGroup // tracks async invocations for Drain
}

type function struct {
	name    string
	handler Handler
	timeout time.Duration

	mu       sync.Mutex
	idleWarm int // simulated pool of warm workers
}

// New creates a platform.
func New(opts Options) *Platform {
	if opts.ConcurrencyLimit == 0 {
		opts.ConcurrencyLimit = DefaultConcurrencyLimit
	}
	ids := opts.IDs
	if ids == nil {
		ids = uuid.Random{}
	}
	return &Platform{
		opts:   opts,
		fns:    make(map[string]*function),
		ids:    ids,
		rng:    newLockedRand(opts.Seed),
		faults: opts.Faults,
	}
}

// SetFaults installs (or replaces) the fault plan at runtime.
func (p *Platform) SetFaults(plan FaultPlan) {
	p.faultsMu.Lock()
	p.faults = plan
	p.faultsMu.Unlock()
}

func (p *Platform) faultPlan() FaultPlan {
	p.faultsMu.RLock()
	defer p.faultsMu.RUnlock()
	return p.faults
}

// Register installs a function under name. Timeout 0 uses the platform
// default. Re-registering a name replaces the handler (deployments).
func (p *Platform) Register(name string, h Handler, timeout time.Duration) {
	if timeout == 0 {
		timeout = p.opts.DefaultTimeout
	}
	p.mu.Lock()
	p.fns[name] = &function{name: name, handler: h, timeout: timeout}
	p.mu.Unlock()
}

// Functions lists registered function names (unordered).
func (p *Platform) Functions() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.fns))
	for n := range p.fns {
		out = append(out, n)
	}
	return out
}

// Metrics exposes the platform's counters.
func (p *Platform) Metrics() *Metrics { return &p.metrics }

// Invoke runs function name synchronously with a fresh instance and returns
// its result. Entry invocations block for a concurrency slot (or are
// rejected, per RejectWhenSaturated) — the account-level admission that
// bottlenecks the paper's saturation experiments.
func (p *Platform) Invoke(name string, input Value) (Value, error) {
	return p.invoke(context.Background(), name, input, false, false)
}

// InvokeCtx is Invoke bounded by a context: the admission wait respects
// cancellation, and the instance carries the context (Invocation.Context) so
// it is killed at its next operation boundary once the context ends — the
// entry point workflows with client deadlines use.
func (p *Platform) InvokeCtx(ctx context.Context, name string, input Value) (Value, error) {
	return p.invoke(ctx, name, input, false, false)
}

// InvokeInternal runs name synchronously on behalf of an already-running
// instance (SSF-to-SSF calls, callbacks, collector restarts). Internal
// invocations consume concurrency when available but never block for it:
// a worker that is already holding a slot while waiting on a child would
// otherwise deadlock the account at its own limit — the situation a real
// platform resolves by throttling with immediate errors and retries.
// Capacity pressure from internal calls still starves entry admission, so
// the saturation knee is preserved.
func (p *Platform) InvokeInternal(name string, input Value) (Value, error) {
	return p.invoke(context.Background(), name, input, false, true)
}

// InvokeInternalCtx is InvokeInternal carrying a caller's context, so
// cancellation and deadlines propagate down SSF-to-SSF call chains.
func (p *Platform) InvokeInternalCtx(ctx context.Context, name string, input Value) (Value, error) {
	return p.invoke(ctx, name, input, false, true)
}

// InvokeAsync starts function name and returns immediately. Errors occurring
// inside the instance are not reported to the caller — the fire-and-forget
// semantics Beldi's asyncInvoke builds on.
func (p *Platform) InvokeAsync(name string, input Value) error {
	return p.invokeAsync(name, input, false)
}

// InvokeAsyncInternal is InvokeAsync with internal admission (see
// InvokeInternal).
func (p *Platform) InvokeAsyncInternal(name string, input Value) error {
	return p.invokeAsync(name, input, true)
}

func (p *Platform) invokeAsync(name string, input Value, internal bool) error {
	p.mu.RLock()
	_, ok := p.fns[name]
	p.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchFunction, name)
	}
	p.wg.Add(1)
	run := func() {
		defer p.wg.Done()
		p.invoke(context.Background(), name, input, true, internal) //nolint:errcheck // async errors are dropped by design
	}
	if p.opts.AsyncDispatch != nil {
		p.opts.AsyncDispatch(run)
		return nil
	}
	go run()
	return nil
}

// Drain blocks until all asynchronous invocations have finished.
func (p *Platform) Drain() { p.wg.Wait() }

func (p *Platform) invoke(ctx context.Context, name string, input Value, async, internal bool) (Value, error) {
	out, err := p.invokeInner(ctx, name, input, async, internal)
	// Cancellation can surface from several places (the entry check, the
	// admission wait, the watcher select, or the instance dying at a crash
	// point); counting at the single exit keeps Cancels at exactly one per
	// canceled invocation.
	if errors.Is(err, ErrCanceled) {
		p.metrics.Cancels.Add(1)
	}
	return out, err
}

func (p *Platform) invokeInner(ctx context.Context, name string, input Value, async, internal bool) (Value, error) {
	p.mu.RLock()
	fn, ok := p.fns[name]
	p.mu.RUnlock()
	if !ok {
		return dynamo.Null, fmt.Errorf("%w: %s", ErrNoSuchFunction, name)
	}
	if err := ctx.Err(); err != nil {
		return dynamo.Null, fmt.Errorf("%w: %s: %v", ErrCanceled, name, err)
	}

	// Concurrency admission. Every instance — entry or internal — counts
	// against the account limit, but only entry invocations wait for room:
	// an internal call blocking for a slot its own ancestors hold would
	// otherwise deadlock the account at its own limit (real platforms break
	// this cycle by throttling internal calls with errors; the paper's
	// evaluation relies on entry admission as the visible bottleneck).
	limit := int64(p.opts.ConcurrencyLimit)
	if internal {
		p.running.Add(1)
	} else if p.opts.RejectWhenSaturated {
		if !p.admitOnce(limit) {
			p.metrics.Throttles.Add(1)
			return dynamo.Null, ErrThrottled
		}
	} else if err := p.admitWait(ctx, limit); err != nil {
		return dynamo.Null, fmt.Errorf("%w: %s: %v", ErrCanceled, name, err)
	}
	defer p.running.Add(-1)
	p.trackConcurrency()

	// Cold/warm start latency.
	fn.mu.Lock()
	cold := fn.idleWarm == 0
	if !cold {
		fn.idleWarm--
	}
	fn.mu.Unlock()
	var startLat time.Duration
	if cold {
		p.metrics.ColdStarts.Add(1)
		startLat = p.jittered(p.opts.ColdStart)
	} else {
		startLat = p.jittered(p.opts.WarmStart)
	}
	if c := p.jittered(p.opts.HandlerCompute); c > 0 {
		startLat += c
	}
	if startLat > 0 {
		time.Sleep(startLat)
	}

	inv := &Invocation{
		RequestID: p.ids.NewString(),
		Function:  name,
		Async:     async,
		ctx:       ctx,
		platform:  p,
		started:   time.Now(),
	}
	if fn.timeout > 0 {
		inv.deadline = inv.started.Add(fn.timeout)
	}
	p.metrics.Invocations.Add(1)

	out, err := p.runInstance(fn, inv, input)

	fn.mu.Lock()
	fn.idleWarm++
	fn.mu.Unlock()
	return out, err
}

// runInstance executes the handler in its own goroutine so an injected
// crash (panic) unwinds the instance without touching the caller, exactly
// like a worker VM dying.
func (p *Platform) runInstance(fn *function, inv *Invocation, input Value) (Value, error) {
	type result struct {
		out Value
		err error
	}
	done := make(chan result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if c, ok := r.(crash); ok {
					switch {
					case c.timeout:
						p.metrics.Timeouts.Add(1)
						done <- result{dynamo.Null, fmt.Errorf("%w: %s at %q", ErrTimeout, inv.Function, c.label)}
					case c.canceled:
						done <- result{dynamo.Null, fmt.Errorf("%w: %s at %q", ErrCanceled, inv.Function, c.label)}
					default:
						p.metrics.Crashes.Add(1)
						done <- result{dynamo.Null, fmt.Errorf("%w: %s at %q", ErrCrashed, inv.Function, c.label)}
					}
					return
				}
				// A genuine application panic also kills the worker.
				p.metrics.Crashes.Add(1)
				done <- result{dynamo.Null, fmt.Errorf("%w: %s: panic: %v", ErrCrashed, inv.Function, r)}
			}
		}()
		out, err := fn.handler(inv, input)
		done <- result{out, err}
	}()

	var expired <-chan time.Time
	if !inv.deadline.IsZero() {
		expired = time.After(time.Until(inv.deadline) + 10*time.Millisecond)
	}
	select {
	case r := <-done:
		p.metrics.Completions.Add(1)
		return r.out, r.err
	case <-expired:
		// The instance missed its deadline and has not yet hit a crash
		// point; report the timeout to the caller. The goroutine will die at
		// its next CrashPoint.
		p.metrics.Timeouts.Add(1)
		return dynamo.Null, fmt.Errorf("%w: %s", ErrTimeout, inv.Function)
	case <-inv.ctx.Done():
		// The caller gave up; report promptly. The instance goroutine dies at
		// its next CrashPoint (the same boundary discipline as timeouts), and
		// whatever it leaves behind is the intent collector's to finish.
		return dynamo.Null, fmt.Errorf("%w: %s: %v", ErrCanceled, inv.Function, inv.ctx.Err())
	}
}

// admitOnce claims a slot if one is free.
func (p *Platform) admitOnce(limit int64) bool {
	for {
		cur := p.running.Load()
		if cur >= limit {
			return false
		}
		if p.running.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// admitWait claims a slot, waiting for one to free (entry queueing — where
// saturation latency comes from in the sweep figures). The wait backs off
// so a deep admission queue doesn't burn CPU polling, and aborts with the
// context's error if the caller gives up while queued.
func (p *Platform) admitWait(ctx context.Context, limit int64) error {
	backoff := 200 * time.Microsecond
	for !p.admitOnce(limit) {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 2*time.Millisecond {
			backoff *= 2
		}
	}
	return nil
}

func (p *Platform) trackConcurrency() {
	cur := p.running.Load()
	for {
		hw := p.metrics.ConcurrencyHighWater.Load()
		if cur <= hw || p.metrics.ConcurrencyHighWater.CompareAndSwap(hw, cur) {
			return
		}
	}
}

func (p *Platform) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	if p.opts.Jitter <= 0 {
		return d
	}
	f := 1 + p.opts.Jitter*(2*p.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// Invocation is the per-instance context handed to handlers. It is the
// platform-level identity Beldi builds on: RequestID is the UUID the first
// SSF of a workflow adopts as its instance id (§3.3).
type Invocation struct {
	RequestID string
	Function  string
	Async     bool

	ctx      context.Context
	platform *Platform
	started  time.Time
	deadline time.Time
	ops      atomic.Int64
}

// Context returns the context the invocation runs under —
// context.Background() unless the caller used an InvokeCtx variant. Beldi
// exposes it to bodies as Env.Context.
func (inv *Invocation) Context() context.Context {
	if inv.ctx == nil {
		return context.Background()
	}
	return inv.ctx
}

// crash is the panic payload used to kill an instance.
type crash struct {
	label    string
	timeout  bool
	canceled bool
}

// IsInjectedCrash reports whether a recovered panic value is the platform's
// instance-kill signal (injected fault or timeout). Library code that
// recovers panics for its own purposes MUST re-raise these — a kill is the
// worker dying, not an application exception.
func IsInjectedCrash(r any) bool {
	_, ok := r.(crash)
	return ok
}

// CrashPoint marks an operation boundary. The instance dies here if the
// fault plan says so or if its execution timeout has expired. Beldi's
// library calls this around every external operation, giving fault-injection
// tests step-level kill granularity.
func (inv *Invocation) CrashPoint(label string) {
	n := inv.ops.Add(1)
	if !inv.deadline.IsZero() && time.Now().After(inv.deadline) {
		panic(crash{label: label, timeout: true})
	}
	if inv.ctx != nil && inv.ctx.Err() != nil {
		// The invocation's context ended: die at this operation boundary, the
		// same way a timeout kills. The intent stays pending — cancellation
		// aborts cleanly; it never produces a partial effect the collectors
		// cannot finish or that replay would duplicate.
		panic(crash{label: label, canceled: true})
	}
	p := inv.platform
	if p == nil {
		return
	}
	if plan := p.faultPlan(); plan != nil && plan.ShouldCrash(inv.Function, label, int(n)) {
		panic(crash{label: label})
	}
}

// Kill unconditionally crashes the instance (used by tests that model a
// worker dying outside any fault plan).
func (inv *Invocation) Kill(label string) {
	panic(crash{label: label})
}

// Platform returns the platform that spawned this instance, letting
// handlers invoke other functions (driver functions, §2.1).
func (inv *Invocation) Platform() *Platform { return inv.platform }

// Elapsed reports how long the instance has been running.
func (inv *Invocation) Elapsed() time.Duration { return time.Since(inv.started) }

// Metrics counts platform activity.
type Metrics struct {
	Invocations          atomic.Int64
	Completions          atomic.Int64
	Crashes              atomic.Int64
	Timeouts             atomic.Int64
	Cancels              atomic.Int64
	Throttles            atomic.Int64
	ColdStarts           atomic.Int64
	ConcurrencyHighWater atomic.Int64
}

// MetricsView is a point-in-time copy for reporting — the common snapshot
// shape shared with core.Stats, dynamo.Metrics, and the other subsystems.
type MetricsView struct {
	Invocations, Completions, Crashes, Timeouts int64
	Cancels, Throttles, ColdStarts              int64
	ConcurrencyHighWater                        int64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsView {
	return MetricsView{
		Invocations:          m.Invocations.Load(),
		Completions:          m.Completions.Load(),
		Crashes:              m.Crashes.Load(),
		Timeouts:             m.Timeouts.Load(),
		Cancels:              m.Cancels.Load(),
		Throttles:            m.Throttles.Load(),
		ColdStarts:           m.ColdStarts.Load(),
		ConcurrencyHighWater: m.ConcurrencyHighWater.Load(),
	}
}

type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	if seed == 0 {
		seed = 1
	}
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	f := l.rng.Float64()
	l.mu.Unlock()
	return f
}
