package platform

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/queue"
	"repro/internal/storage"
)

// This file is the trigger half of the event-queue subsystem: an event-source
// mapping in the AWS Lambda/Triggerflow sense. A Mapper polls one durable
// queue in configurable batches and triggers a registered function once per
// message, acking on success and leaving failures to reappear after the
// queue's visibility timeout — so a consumer instance that crashes
// mid-handler is redelivered, and the function's own idempotence (for Beldi
// SSFs, intent-table dedup) turns at-least-once delivery into exactly-once
// processing. Batch size is the throughput lever (the Netherite observation:
// fetching and dispatching work in batches is what amortizes per-message
// round trips).
//
// When the backing store supports commit-stream watches (storage.Watcher),
// an idle mapper blocks on the queue table's push subscription instead of
// sleeping out its poll interval: an enqueue wakes it immediately, so
// trigger latency is decoupled from PollInterval. The poll timer stays armed
// underneath as the liveness fallback — a dropped or coalesced wakeup costs
// at most one PollInterval, never progress.

// EventSourceOptions configure one queue→function mapping.
type EventSourceOptions struct {
	// Queue is the source queue name. Required.
	Queue string
	// Function is the platform function triggered per message. Required.
	Function string
	// BatchSize is how many messages one poll claims. 0 means
	// DefaultBatchSize.
	BatchSize int
	// PollInterval is the idle delay between polls when the queue was empty;
	// a non-empty batch polls again immediately. 0 means
	// DefaultPollInterval.
	PollInterval time.Duration
	// NackOnError returns failed messages to the queue immediately instead
	// of letting the visibility timeout expire. Faster redelivery, but a
	// crash-looping consumer burns its redelivery budget just as fast;
	// default false (SQS semantics: a dead consumer cannot nack).
	NackOnError bool
}

// Defaults for EventSourceOptions zero values.
const (
	DefaultBatchSize    = 10
	DefaultPollInterval = 10 * time.Millisecond
)

func (o EventSourceOptions) withDefaults() EventSourceOptions {
	if o.BatchSize == 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.PollInterval == 0 {
		o.PollInterval = DefaultPollInterval
	}
	return o
}

// Mapper polls a queue and triggers its function. Create with NewMapper,
// then either Start a background poll loop or drive it deterministically
// with PollOnce.
type Mapper struct {
	broker *queue.Broker
	plat   *Platform
	opts   EventSourceOptions

	metrics MapperMetrics

	mu      sync.Mutex
	stopCh  chan struct{}
	doneCh  chan struct{}
	started bool

	// subMu guards the lazily acquired push subscription on the source
	// queue's table (nil when the store has no push support, or after the
	// subscription died and has not been re-acquired yet).
	subMu sync.Mutex
	sub   storage.Subscription
}

// NewMapper creates an event-source mapping from broker's queue to a
// platform function. The queue must exist by the time messages flow.
func NewMapper(broker *queue.Broker, plat *Platform, opts EventSourceOptions) (*Mapper, error) {
	if opts.Queue == "" || opts.Function == "" {
		return nil, fmt.Errorf("platform: NewMapper: Queue and Function are required")
	}
	return &Mapper{broker: broker, plat: plat, opts: opts.withDefaults()}, nil
}

// MustNewMapper is NewMapper, panicking on error; for setup code.
func MustNewMapper(broker *queue.Broker, plat *Platform, opts EventSourceOptions) *Mapper {
	m, err := NewMapper(broker, plat, opts)
	if err != nil {
		panic(err)
	}
	return m
}

// Options returns the mapping's effective configuration.
func (m *Mapper) Options() EventSourceOptions { return m.opts }

// Metrics exposes the mapping's counters.
func (m *Mapper) Metrics() *MapperMetrics { return &m.metrics }

// PollOnce claims one batch and triggers the function once per message,
// concurrently across the batch. It returns how many messages were processed
// successfully (invoked and acked) and how many failed (left in flight for
// redelivery, or nacked under NackOnError). Queue-level errors are returned;
// handler errors are not — they are the redelivery path, not the mapper's
// failure.
func (m *Mapper) PollOnce() (processed, failed int, err error) {
	msgs, err := m.broker.Receive(m.opts.Queue, m.opts.BatchSize)
	if err != nil {
		return 0, 0, err
	}
	if len(msgs) == 0 {
		return 0, 0, nil
	}
	m.metrics.Batches.Add(1)
	var ok, bad atomic.Int64
	var wg sync.WaitGroup
	for _, msg := range msgs {
		wg.Add(1)
		go func(msg queue.Message) {
			defer wg.Done()
			if m.deliver(msg) {
				ok.Add(1)
			} else {
				bad.Add(1)
			}
		}(msg)
	}
	wg.Wait()
	return int(ok.Load()), int(bad.Load()), nil
}

// deliver triggers the function for one message and settles the message by
// the outcome. Reports success.
//
// Admission depends on the platform's saturation policy. Under
// RejectWhenSaturated the entry path fails fast with ErrThrottled, which we
// turn into an immediate nack-and-retry. Under blocking admission the entry
// path would park this goroutine in the admission queue while the message's
// visibility clock keeps running — a saturated platform would burn healthy
// messages' redelivery budgets — so the trigger runs with internal
// admission, which consumes capacity but never waits for it.
func (m *Mapper) deliver(msg queue.Message) bool {
	var err error
	if m.plat.opts.RejectWhenSaturated {
		_, err = m.plat.Invoke(m.opts.Function, msg.Body)
	} else {
		_, err = m.plat.InvokeInternal(m.opts.Function, msg.Body)
	}
	if err != nil {
		m.metrics.Failures.Add(1)
		if errors.Is(err, ErrThrottled) || m.opts.NackOnError {
			// Throttling is the platform refusing admission, not the handler
			// failing: return the message immediately so another poll retries
			// as soon as capacity frees, instead of waiting out the
			// visibility timeout.
			if nerr := m.broker.Nack(m.opts.Queue, msg.ID, msg.Receipt); nerr != nil && !errors.Is(nerr, queue.ErrStaleReceipt) {
				m.metrics.SettleErrors.Add(1)
			}
			return false
		}
		// The instance died (crash, timeout) or the handler errored: like a
		// real dead consumer it cannot nack. The claim expires and the
		// message is redelivered with its receive count advanced.
		return false
	}
	if aerr := m.broker.Ack(m.opts.Queue, msg.ID, msg.Receipt); aerr != nil {
		if errors.Is(aerr, queue.ErrStaleReceipt) {
			// The handler outlived the visibility timeout and the message was
			// redelivered meanwhile. The other delivery owns settlement now;
			// the function's idempotence already absorbed the duplicate run.
			m.metrics.StaleDeliveries.Add(1)
			return true
		}
		m.metrics.SettleErrors.Add(1)
		return false
	}
	m.metrics.Delivered.Add(1)
	return true
}

// Start launches the background poll loop. A non-empty batch loops
// immediately; an empty poll sleeps PollInterval. Start is idempotent while
// running.
func (m *Mapper) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	m.stopCh = make(chan struct{})
	m.doneCh = make(chan struct{})
	go m.loop(m.stopCh, m.doneCh)
}

func (m *Mapper) loop(stopCh, doneCh chan struct{}) {
	defer close(doneCh)
	defer m.closeSub()
	for {
		select {
		case <-stopCh:
			return
		default:
		}
		n, _, err := m.PollOnce()
		if err != nil || n == 0 {
			m.idleWait(stopCh)
		}
	}
}

// Run polls until ctx ends — the context-first alternative to Start/Stop for
// callers that manage lifecycles with contexts. A non-empty batch polls again
// immediately; an idle mapper blocks until a commit lands on the queue (when
// the store pushes) or PollInterval elapses, whichever is first. Run returns
// ctx.Err() once the context is done; messages already claimed keep their
// visibility timeout, so nothing is lost.
func (m *Mapper) Run(ctx context.Context) error {
	defer m.closeSub()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, _, err := m.PollOnce()
		if err != nil || n == 0 {
			m.idleWait(ctx.Done())
		}
	}
}

// idleWait parks the mapper until new work is likely: a commit on the source
// queue's table (push wakeup), PollInterval elapsing (the liveness fallback
// that bounds staleness when push is unavailable or a wakeup was lost), or
// cancel firing. The wait is always interruptible by cancel — Stop and
// context cancellation return promptly no matter how long PollInterval is.
func (m *Mapper) idleWait(cancel <-chan struct{}) {
	sub := m.watchSub()
	timer := time.NewTimer(m.opts.PollInterval)
	defer timer.Stop()
	if sub == nil {
		select {
		case <-cancel:
		case <-timer.C:
		}
		return
	}
	select {
	case _, ok := <-sub.Events():
		if !ok {
			// The subscription died (store closed, remote connection lost):
			// drop it so the next idle period resubscribes or falls back.
			m.dropSub(sub)
			select {
			case <-cancel:
			case <-timer.C:
			}
			return
		}
		m.metrics.Wakeups.Add(1)
	case <-timer.C:
	case <-cancel:
	}
}

// watchSub returns the live push subscription, acquiring one lazily; nil
// when the backing store has no push support.
func (m *Mapper) watchSub() storage.Subscription {
	m.subMu.Lock()
	defer m.subMu.Unlock()
	if m.sub == nil {
		m.sub, _ = m.broker.Watch(m.opts.Queue)
	}
	return m.sub
}

// dropSub forgets (and closes) a dead subscription so a fresh one can be
// acquired.
func (m *Mapper) dropSub(sub storage.Subscription) {
	m.subMu.Lock()
	if m.sub == sub {
		m.sub = nil
	}
	m.subMu.Unlock()
	sub.Close()
}

// closeSub releases the push subscription on loop exit.
func (m *Mapper) closeSub() {
	m.subMu.Lock()
	sub := m.sub
	m.sub = nil
	m.subMu.Unlock()
	if sub != nil {
		sub.Close()
	}
}

// Stop halts the poll loop and waits for the in-flight poll to finish.
// Messages already claimed keep their visibility timeout; nothing is lost.
func (m *Mapper) Stop() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	m.started = false
	stopCh, doneCh := m.stopCh, m.doneCh
	m.mu.Unlock()
	close(stopCh)
	<-doneCh
}

// MapperMetrics counts one event-source mapping's activity. Wakeups counts
// idle waits ended by a push event rather than the fallback timer — the
// observable difference between push-triggered and poll-triggered delivery.
type MapperMetrics struct {
	Batches         atomic.Int64
	Delivered       atomic.Int64
	Failures        atomic.Int64
	StaleDeliveries atomic.Int64
	SettleErrors    atomic.Int64
	Wakeups         atomic.Int64
}

// MapperMetricsView is a point-in-time copy for reporting.
type MapperMetricsView struct {
	Batches, Delivered, Failures  int64
	StaleDeliveries, SettleErrors int64
	Wakeups                       int64
}

// Snapshot copies the counters.
func (m *MapperMetrics) Snapshot() MapperMetricsView {
	return MapperMetricsView{
		Batches:         m.Batches.Load(),
		Delivered:       m.Delivered.Load(),
		Failures:        m.Failures.Load(),
		StaleDeliveries: m.StaleDeliveries.Load(),
		SettleErrors:    m.SettleErrors.Load(),
		Wakeups:         m.Wakeups.Load(),
	}
}
