package platform

import (
	"context"
	"testing"
	"time"

	"repro/internal/dynamo"
	"repro/internal/queue"
)

// TestMapperPushWakeupDeliversBeforePollInterval pins the push path: with a
// deliberately huge PollInterval, an enqueue must still be delivered almost
// immediately, because the idle mapper blocks on the queue table's commit
// stream rather than the poll timer.
func TestMapperPushWakeupDeliversBeforePollInterval(t *testing.T) {
	broker, plat, m := newMapperRig(t, queue.Options{}, Options{},
		EventSourceOptions{Queue: "q", Function: "consume", PollInterval: time.Hour})
	delivered := make(chan string, 1)
	plat.Register("consume", func(inv *Invocation, input Value) (Value, error) {
		delivered <- input.Str()
		return dynamo.Null, nil
	}, 0)

	m.Start()
	defer m.Stop()
	// Let the loop drain its initial poll and park on the subscription.
	time.Sleep(20 * time.Millisecond)
	if _, err := broker.Enqueue("q", dynamo.S("pushed")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-delivered:
		if got != "pushed" {
			t.Fatalf("delivered %q, want %q", got, "pushed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered: push wakeup lost and poll fallback is an hour out")
	}
	if m.Metrics().Wakeups.Load() == 0 {
		t.Error("Wakeups = 0, want at least one push wakeup")
	}
}

// TestMapperStopInterruptsIdleWait pins that Stop returns promptly while the
// loop is parked in an idle wait with a long PollInterval — the wait must be
// interruptible, not slept out.
func TestMapperStopInterruptsIdleWait(t *testing.T) {
	_, plat, m := newMapperRig(t, queue.Options{}, Options{},
		EventSourceOptions{Queue: "q", Function: "consume", PollInterval: time.Hour})
	plat.Register("consume", func(inv *Invocation, input Value) (Value, error) {
		return dynamo.Null, nil
	}, 0)

	m.Start()
	time.Sleep(20 * time.Millisecond) // park in the idle wait
	done := make(chan struct{})
	go func() {
		m.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not interrupt an idle wait with PollInterval = 1h")
	}
}

// TestMapperRunCancelInterruptsIdleWait is the context-first twin: canceling
// Run's context must end the loop promptly mid-idle-wait.
func TestMapperRunCancelInterruptsIdleWait(t *testing.T) {
	_, plat, m := newMapperRig(t, queue.Options{}, Options{},
		EventSourceOptions{Queue: "q", Function: "consume", PollInterval: time.Hour})
	plat.Register("consume", func(inv *Invocation, input Value) (Value, error) {
		return dynamo.Null, nil
	}, 0)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()
	time.Sleep(20 * time.Millisecond) // park in the idle wait
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not observe cancellation during an idle wait with PollInterval = 1h")
	}
}
