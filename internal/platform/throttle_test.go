package platform

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynamo"
)

// Throttling under RejectWhenSaturated: the admission behavior the paper's
// saturation experiments and the event-source mapper's nack-and-retry path
// both depend on.

// saturate occupies every slot of p with "hold" instances and returns the
// release function.
func saturate(t *testing.T, p *Platform, slots int) func() {
	t.Helper()
	release := make(chan struct{})
	var wg sync.WaitGroup
	p.Register("hold", func(*Invocation, Value) (Value, error) {
		<-release
		return dynamo.Null, nil
	}, 0)
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Invoke("hold", dynamo.Null); err != nil {
				t.Error(err)
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.running.Load() < int64(slots) {
		if time.Now().After(deadline) {
			t.Fatal("could not saturate the platform")
		}
		time.Sleep(time.Millisecond)
	}
	return func() {
		close(release)
		wg.Wait()
	}
}

func TestRejectWhenSaturatedCountsEveryThrottle(t *testing.T) {
	p := New(Options{ConcurrencyLimit: 2, RejectWhenSaturated: true})
	p.Register("f", echoHandler, 0)
	release := saturate(t, p, 2)

	const attempts = 7
	for i := 0; i < attempts; i++ {
		if _, err := p.Invoke("f", dynamo.Null); !errors.Is(err, ErrThrottled) {
			t.Fatalf("attempt %d: err = %v, want ErrThrottled", i, err)
		}
	}
	if got := p.Metrics().Throttles.Load(); got != attempts {
		t.Errorf("Throttles = %d, want %d", got, attempts)
	}
	// Throttled attempts must not leak admission slots: after release, the
	// account drains back to zero and fresh invocations are admitted.
	release()
	if _, err := p.Invoke("f", dynamo.Null); err != nil {
		t.Errorf("post-release invoke: %v", err)
	}
	if cur := p.running.Load(); cur != 0 {
		t.Errorf("running = %d after quiescence, want 0 (leaked slot)", cur)
	}
}

func TestInternalCallsBypassSaturationRejection(t *testing.T) {
	p := New(Options{ConcurrencyLimit: 1, RejectWhenSaturated: true})
	p.Register("f", echoHandler, 0)
	release := saturate(t, p, 1)
	defer release()

	// Internal (SSF-to-SSF) calls never block and never throttle at the
	// account limit — the deadlock-avoidance rule. They run even while entry
	// admission is rejecting.
	if _, err := p.InvokeInternal("f", dynamo.S("x")); err != nil {
		t.Errorf("internal call under saturation: %v", err)
	}
	if _, err := p.Invoke("f", dynamo.Null); !errors.Is(err, ErrThrottled) {
		t.Errorf("entry call under saturation: %v, want ErrThrottled", err)
	}
}

func TestAsyncEntryThrottledSilently(t *testing.T) {
	p := New(Options{ConcurrencyLimit: 1, RejectWhenSaturated: true})
	var ran atomic.Int64
	p.Register("f", func(*Invocation, Value) (Value, error) {
		ran.Add(1)
		return dynamo.Null, nil
	}, 0)
	release := saturate(t, p, 1)

	// Fire-and-forget entry invocations are admitted or dropped without a
	// caller-visible error (the provider behavior Beldi's durable queue path
	// exists to fix).
	if err := p.InvokeAsync("f", dynamo.Null); err != nil {
		t.Fatalf("InvokeAsync returned %v, want nil (errors are dropped by design)", err)
	}
	p.Drain()
	if ran.Load() != 0 {
		t.Fatal("async invocation ran despite saturation")
	}
	if p.Metrics().Throttles.Load() == 0 {
		t.Error("dropped async invocation not counted as a throttle")
	}
	release()
	if err := p.InvokeAsync("f", dynamo.Null); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	if ran.Load() != 1 {
		t.Errorf("post-release async ran %d times, want 1", ran.Load())
	}
}

func TestSaturationHighWaterStaysAtLimit(t *testing.T) {
	p := New(Options{ConcurrencyLimit: 3, RejectWhenSaturated: true})
	p.Register("f", echoHandler, 0)
	release := saturate(t, p, 3)
	for i := 0; i < 5; i++ {
		p.Invoke("f", dynamo.Null) //nolint:errcheck // expected throttles
	}
	release()
	if hw := p.Metrics().ConcurrencyHighWater.Load(); hw > 3 {
		t.Errorf("high water = %d, want <= limit 3", hw)
	}
}
