package platform

import (
	"math/rand"
	"sync"
)

// FaultPlan decides whether an instance dies at a crash point. fn is the
// function name, label the crash-point label (Beldi labels step boundaries
// like "write:post:3"), and opIndex the 1-based count of crash points this
// instance has passed. Implementations must be safe for concurrent use.
type FaultPlan interface {
	ShouldCrash(fn, label string, opIndex int) bool
}

// CrashOnce kills the first instance of Function that reaches Label, then
// disarms — the canonical "fail, then let the intent collector finish the
// job" scenario from the paper's exactly-once experiments.
type CrashOnce struct {
	Function string
	Label    string

	mu    sync.Mutex
	fired bool
}

// ShouldCrash implements FaultPlan.
func (c *CrashOnce) ShouldCrash(fn, label string, _ int) bool {
	if fn != c.Function || label != c.Label {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fired {
		return false
	}
	c.fired = true
	return true
}

// Fired reports whether the crash has been injected.
func (c *CrashOnce) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// CrashNthOp kills the first instance of Function that reaches its Nth
// crash point (1-based), then disarms. Sweeping N over a workflow's crash
// points gives exhaustive step-boundary fault coverage without knowing the
// labels in advance.
type CrashNthOp struct {
	Function string
	N        int

	mu    sync.Mutex
	fired bool
}

// ShouldCrash implements FaultPlan.
func (c *CrashNthOp) ShouldCrash(fn, _ string, opIndex int) bool {
	if fn != c.Function || opIndex != c.N {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fired {
		return false
	}
	c.fired = true
	return true
}

// Fired reports whether the crash has been injected.
func (c *CrashNthOp) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// CrashProb kills instances of Function (or any function when Function is
// "") at each crash point with probability P — background chaos for stress
// tests.
type CrashProb struct {
	Function string
	P        float64
	Seed     int64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

// ShouldCrash implements FaultPlan.
func (c *CrashProb) ShouldCrash(fn, _ string, _ int) bool {
	if c.Function != "" && fn != c.Function {
		return false
	}
	c.once.Do(func() {
		seed := c.Seed
		if seed == 0 {
			seed = 42
		}
		c.rng = rand.New(rand.NewSource(seed))
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64() < c.P
}

// Plans combines fault plans: an instance dies if any plan says so.
type Plans []FaultPlan

// ShouldCrash implements FaultPlan.
func (ps Plans) ShouldCrash(fn, label string, opIndex int) bool {
	for _, p := range ps {
		if p.ShouldCrash(fn, label, opIndex) {
			return true
		}
	}
	return false
}

// OpCounter records, per function, the largest crash-point index any
// instance reached. Fault sweeps run a workload once under an OpCounter to
// learn how many kill points exist, then iterate CrashNthOp over them.
type OpCounter struct {
	mu  sync.Mutex
	max map[string]int
}

// ShouldCrash implements FaultPlan; it never crashes, only counts.
func (o *OpCounter) ShouldCrash(fn, _ string, opIndex int) bool {
	o.mu.Lock()
	if o.max == nil {
		o.max = make(map[string]int)
	}
	if opIndex > o.max[fn] {
		o.max[fn] = opIndex
	}
	o.mu.Unlock()
	return false
}

// Max reports the largest op index seen for fn.
func (o *OpCounter) Max(fn string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.max[fn]
}

// Total sums the op counts across functions.
func (o *OpCounter) Total() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, v := range o.max {
		n += v
	}
	return n
}

// Functions lists functions that hit at least one crash point.
func (o *OpCounter) Functions() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.max))
	for fn := range o.max {
		out = append(out, fn)
	}
	return out
}
