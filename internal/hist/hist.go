// Package hist provides a concurrent, log-bucketed latency histogram in the
// spirit of HdrHistogram — the recording half of a wrk2-style load
// generator (§7.2 of the paper uses wrk2 for its latency figures).
//
// Buckets grow geometrically (~4.6% per bucket), giving better-than-5%
// relative precision across nanoseconds-to-minutes with a few hundred
// buckets — precise enough for the median and p99 series the paper plots.
package hist

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// numBuckets covers 1µs..~10min at ~4.6% growth.
const (
	numBuckets = 512
	growth     = 1.046
	minValueNs = 1000 // 1µs floor
)

var bucketFloor [numBuckets]float64

func init() {
	v := float64(minValueNs)
	for i := range bucketFloor {
		bucketFloor[i] = v
		v *= growth
	}
}

// Histogram records durations. The zero value is ready to use; all methods
// are safe for concurrent use.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64
	min    atomic.Int64 // stored as -min for CAS-free updates via Max-style loop
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < minValueNs {
		ns = minValueNs
	}
	h.counts[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	updateMax(&h.max, ns)
	updateMax(&h.min, -ns)
}

func updateMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if cur >= v && cur != 0 {
			return
		}
		if a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func bucketOf(ns int64) int {
	i := int(math.Log(float64(ns)/minValueNs) / math.Log(growth))
	if i < 0 {
		return 0
	}
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observation.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration {
	v := h.min.Load()
	if v == 0 {
		return 0
	}
	return time.Duration(-v)
}

// Quantile returns the q-quantile (0 < q <= 1), approximated to the bucket
// ceiling like HdrHistogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(bucketFloor[i] * growth) // bucket ceiling
		}
	}
	return h.Max()
}

// Median is Quantile(0.5).
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Merge adds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := 0; i < numBuckets; i++ {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	updateMax(&h.max, o.max.Load())
	updateMax(&h.min, o.min.Load())
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := 0; i < numBuckets; i++ {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	h.min.Store(0)
}

// Snapshot is an immutable point-in-time copy of a histogram. It answers
// the same quantile questions as the live histogram but never changes, so
// exporters can serialize it and interval collectors can diff consecutive
// windows without racing recorders.
type Snapshot struct {
	counts [numBuckets]int64
	count  int64
	sum    int64
	max    int64
	min    int64 // stored negated, like Histogram.min
}

// Snapshot copies the histogram's current state without disturbing it.
// Concurrent Records may or may not be included; each bucket is read
// atomically so the copy is always internally plausible.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := 0; i < numBuckets; i++ {
		s.counts[i] = h.counts[i].Load()
	}
	s.count = h.count.Load()
	s.sum = h.sum.Load()
	s.max = h.max.Load()
	s.min = h.min.Load()
	return s
}

// SnapshotReset atomically drains the histogram into a Snapshot and zeroes
// it — the per-interval window primitive (each call returns the
// observations since the previous call). Buckets are swapped individually,
// so a Record racing the swap lands wholly in one window or the next, never
// both; the aggregate count/sum may momentarily disagree with the bucket
// totals by the few racing observations, which is harmless for quantiles.
func (h *Histogram) SnapshotReset() Snapshot {
	var s Snapshot
	for i := 0; i < numBuckets; i++ {
		s.counts[i] = h.counts[i].Swap(0)
	}
	s.count = h.count.Swap(0)
	s.sum = h.sum.Swap(0)
	s.max = h.max.Swap(0)
	s.min = h.min.Swap(0)
	return s
}

// Count returns the number of observations in the snapshot.
func (s Snapshot) Count() int64 { return s.count }

// Mean returns the snapshot's mean observation.
func (s Snapshot) Mean() time.Duration {
	if s.count == 0 {
		return 0
	}
	return time.Duration(s.sum / s.count)
}

// Max returns the snapshot's largest observation.
func (s Snapshot) Max() time.Duration { return time.Duration(s.max) }

// Min returns the snapshot's smallest observation.
func (s Snapshot) Min() time.Duration {
	if s.min == 0 {
		return 0
	}
	return time.Duration(-s.min)
}

// Quantile returns the snapshot's q-quantile (0 < q <= 1), to the same
// bucket-ceiling precision as Histogram.Quantile.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += s.counts[i]
		if seen >= rank {
			return time.Duration(bucketFloor[i] * growth)
		}
	}
	return s.Max()
}

// Median is Quantile(0.5).
func (s Snapshot) Median() time.Duration { return s.Quantile(0.5) }

// P99 is Quantile(0.99).
func (s Snapshot) P99() time.Duration { return s.Quantile(0.99) }

// Summary renders count/mean/median/p99/max on one line.
func (s Snapshot) Summary() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s max=%s",
		s.Count(), round(s.Mean()), round(s.Median()), round(s.P99()), round(s.Max()))
}

// Summary renders count/mean/median/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p99=%s max=%s",
		h.Count(), round(h.Mean()), round(h.Median()), round(h.P99()), round(h.Max()))
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

// Percentiles returns the requested quantiles in order.
func (h *Histogram) Percentiles(qs ...float64) []time.Duration {
	sort.Float64s(qs)
	out := make([]time.Duration, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// Ascii renders a coarse textual distribution, for the demo binary.
func (h *Histogram) Ascii(width int) string {
	var b strings.Builder
	total := h.Count()
	if total == 0 {
		return "(empty)\n"
	}
	// Collapse to at most 16 display rows spanning occupied buckets.
	first, last := -1, 0
	for i := 0; i < numBuckets; i++ {
		if h.counts[i].Load() > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	span := last - first + 1
	rows := 16
	if span < rows {
		rows = span
	}
	per := (span + rows - 1) / rows
	for r := 0; r < rows; r++ {
		lo := first + r*per
		hi := lo + per
		if hi > last+1 {
			hi = last + 1
		}
		var n int64
		for i := lo; i < hi; i++ {
			n += h.counts[i].Load()
		}
		bar := int(float64(n) / float64(total) * float64(width))
		fmt.Fprintf(&b, "%10s |%s %d\n",
			time.Duration(bucketFloor[lo]).Round(100*time.Microsecond),
			strings.Repeat("#", bar), n)
	}
	return b.String()
}
