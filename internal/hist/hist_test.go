package hist

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Median() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Error("empty histogram not zero")
	}
}

func TestSingleObservation(t *testing.T) {
	var h Histogram
	h.Record(10 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Median(); got < 9*time.Millisecond || got > 11*time.Millisecond {
		t.Errorf("median = %v", got)
	}
	if h.Max() != 10*time.Millisecond || h.Min() != 10*time.Millisecond {
		t.Errorf("max/min = %v/%v", h.Max(), h.Min())
	}
}

func TestQuantileAccuracy(t *testing.T) {
	// Uniform 1..100ms: p50 ≈ 50ms, p99 ≈ 99ms within bucket precision.
	var h Histogram
	for i := 1; i <= 100; i++ {
		for j := 0; j < 10; j++ {
			h.Record(time.Duration(i) * time.Millisecond)
		}
	}
	within := func(got, want time.Duration) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) <= 0.10*float64(want)
	}
	if got := h.Median(); !within(got, 50*time.Millisecond) {
		t.Errorf("p50 = %v", got)
	}
	if got := h.P99(); !within(got, 99*time.Millisecond) {
		t.Errorf("p99 = %v", got)
	}
	if got := h.Mean(); !within(got, 50500*time.Microsecond) {
		t.Errorf("mean = %v", got)
	}
}

func TestQuantileMonotoneQuick(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		h.Record(time.Duration(rng.Intn(1_000_000_000)))
	}
	f := func(a, b float64) bool {
		qa := 0.01 + 0.98*abs(a-float64(int(a)))
		qb := 0.01 + 0.98*abs(b-float64(int(b)))
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func TestMergePreservesCountsAndShape(t *testing.T) {
	var a, b, whole Histogram
	for i := 1; i <= 500; i++ {
		d := time.Duration(i) * time.Millisecond
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("count %d != %d", a.Count(), whole.Count())
	}
	if a.Median() != whole.Median() || a.P99() != whole.P99() {
		t.Errorf("quantiles diverge after merge: %v/%v vs %v/%v",
			a.Median(), a.P99(), whole.Median(), whole.P99())
	}
	if a.Max() != whole.Max() || a.Min() != whole.Min() {
		t.Errorf("extrema diverge")
	}
}

func TestConcurrentRecording(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(1+i%50) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestResetClears(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Median() != 0 {
		t.Error("reset incomplete")
	}
}

func TestTinyAndHugeValuesClamped(t *testing.T) {
	var h Histogram
	h.Record(1)                   // below floor
	h.Record(24 * time.Hour)      // beyond top bucket
	h.Record(3 * time.Nanosecond) // below floor
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(1.0) <= 0 {
		t.Error("top quantile not positive")
	}
}

func TestSummaryAndAsciiRender(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(1+i) * time.Millisecond)
	}
	if s := h.Summary(); s == "" {
		t.Error("empty summary")
	}
	if a := h.Ascii(40); a == "" || a == "(empty)\n" {
		t.Errorf("ascii render: %q", a)
	}
	var empty Histogram
	if a := empty.Ascii(40); a != "(empty)\n" {
		t.Errorf("empty ascii: %q", a)
	}
}

func TestPercentilesSorted(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	ps := h.Percentiles(0.99, 0.5, 0.9)
	if !(ps[0] <= ps[1] && ps[1] <= ps[2]) {
		t.Errorf("percentiles unsorted: %v", ps)
	}
}

func TestSnapshotMatchesLiveQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		if got, want := s.Quantile(q), h.Quantile(q); got != want {
			t.Errorf("q=%g: snapshot %s != live %s", q, got, want)
		}
	}
	if s.Count() != h.Count() || s.Mean() != h.Mean() ||
		s.Max() != h.Max() || s.Min() != h.Min() {
		t.Errorf("snapshot aggregates diverge: %s vs %s", s.Summary(), h.Summary())
	}
	// Snapshot is a copy: further records leave it untouched.
	before := s.Count()
	h.Record(time.Hour)
	if s.Count() != before {
		t.Error("snapshot mutated by later Record")
	}
}

// TestSnapshotQuantilePrecision pins the bucket-ceiling guarantee: every
// snapshot quantile is >= the exact value and within one bucket's relative
// growth (~4.6%) above it, for a uniform and a bimodal distribution.
func TestSnapshotQuantilePrecision(t *testing.T) {
	check := func(name string, s Snapshot, q float64, exact time.Duration) {
		got := s.Quantile(q)
		if got < exact {
			t.Errorf("%s q=%g: %s below exact %s", name, q, got, exact)
		}
		// One bucket of slack above the ceiling of the exact value's bucket.
		limit := time.Duration(float64(exact) * growth * growth)
		if got > limit {
			t.Errorf("%s q=%g: %s exceeds %s (>2 buckets above exact %s)", name, q, got, limit, exact)
		}
	}
	var u Histogram
	for i := 1; i <= 100000; i++ {
		u.Record(time.Duration(i) * time.Microsecond)
	}
	us := u.Snapshot()
	check("uniform", us, 0.5, 50*time.Millisecond)
	check("uniform", us, 0.99, 99*time.Millisecond)

	var b Histogram
	for i := 0; i < 9900; i++ {
		b.Record(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		b.Record(time.Second)
	}
	bs := b.Snapshot()
	check("bimodal", bs, 0.5, time.Millisecond)
	check("bimodal", bs, 0.999, time.Second)
}

func TestSnapshotResetWindows(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(10 * time.Millisecond)
	}
	w1 := h.SnapshotReset()
	if w1.Count() != 100 {
		t.Fatalf("window 1 count = %d", w1.Count())
	}
	if h.Count() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("histogram not drained")
	}
	for i := 0; i < 50; i++ {
		h.Record(20 * time.Millisecond)
	}
	w2 := h.SnapshotReset()
	if w2.Count() != 50 {
		t.Fatalf("window 2 count = %d", w2.Count())
	}
	if w2.Median() <= w1.Median() {
		t.Errorf("window 2 median %s not above window 1 %s", w2.Median(), w1.Median())
	}
	// Windows recombine losslessly via Merge on a scratch histogram.
	if w1.Count()+w2.Count() != 150 {
		t.Error("windows lost observations")
	}
}

func TestMergePreservesQuantiles(t *testing.T) {
	var a, b, whole Histogram
	for i := 1; i <= 5000; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		whole.Record(time.Duration(i) * time.Microsecond)
	}
	for i := 5001; i <= 10000; i++ {
		b.Record(time.Duration(i) * time.Microsecond)
		whole.Record(time.Duration(i) * time.Microsecond)
	}
	a.Merge(&b)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("q=%g: merged %s != whole %s", q, got, want)
		}
	}
	if a.Count() != 10000 || a.Max() != whole.Max() || a.Min() != whole.Min() {
		t.Errorf("merged aggregates diverge: %s vs %s", a.Summary(), whole.Summary())
	}
}

func TestSnapshotEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count() != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 || s.Min() != 0 {
		t.Errorf("empty snapshot not zero: %s", s.Summary())
	}
}
