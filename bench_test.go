package repro_test

// testing.B benchmarks, one per table/figure of the paper's evaluation (§7,
// Appendix C), built on the same harness as cmd/figures. Benchmarks run
// with compressed latency scales so `go test -bench=.` finishes quickly;
// cmd/figures regenerates the full series with presentation-grade
// parameters (see EXPERIMENTS.md).
//
// The reported custom metrics are the figures' y-values:
// p50-ms / p99-ms for latency figures, tput-req/s for sweeps.

import (
	"fmt"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/bench"
)

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// benchFig13 runs one Figure 13/25 cell per benchmark iteration batch.
func benchFig13(b *testing.B, rows int) {
	b.Helper()
	res, err := bench.Fig13(bench.Fig13Options{
		DAALRows: rows,
		Ops:      30,
		Scale:    0.02,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range res {
		b.ReportMetric(ms(r.Median), fmt.Sprintf("p50-ms-%s-%s", r.Op, r.Mode))
	}
}

// BenchmarkFig13OpLatency regenerates Figure 13: read/write/condWrite/invoke
// latency for baseline vs Beldi vs cross-table-txn on a 20-row DAAL.
func BenchmarkFig13OpLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig13(b, 20)
	}
}

// BenchmarkFig25OpLatencyShallowDAAL regenerates Figure 25 (Appendix C):
// the same microbenchmark with a 5-row DAAL.
func BenchmarkFig25OpLatencyShallowDAAL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig13(b, 5)
	}
}

// benchSweepPoint measures one latency/throughput point for an app+mode.
func benchSweepPoint(b *testing.B, app string, mode beldi.Mode) {
	b.Helper()
	pts, err := bench.Sweep(bench.SweepOptions{
		App:      app,
		Mode:     mode,
		Rates:    []float64{200},
		Duration: 600 * time.Millisecond,
		Warmup:   150 * time.Millisecond,
		Scale:    0.05,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := pts[0]
	b.ReportMetric(p.Throughput, "tput-req/s")
	b.ReportMetric(ms(p.P50), "p50-ms")
	b.ReportMetric(ms(p.P99), "p99-ms")
}

// BenchmarkFig14MediaBaseline and ...Beldi regenerate a Figure 14 point:
// the movie review service under load.
func BenchmarkFig14MediaBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSweepPoint(b, "media", beldi.ModeBaseline)
	}
}

// BenchmarkFig14MediaBeldi is the Beldi half of Figure 14.
func BenchmarkFig14MediaBeldi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSweepPoint(b, "media", beldi.ModeBeldi)
	}
}

// BenchmarkFig15TravelBaseline and ...Beldi regenerate a Figure 15 point:
// the travel reservation service (cross-SSF transactions) under load.
func BenchmarkFig15TravelBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSweepPoint(b, "travel", beldi.ModeBaseline)
	}
}

// BenchmarkFig15TravelBeldi is the Beldi half of Figure 15.
func BenchmarkFig15TravelBeldi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSweepPoint(b, "travel", beldi.ModeBeldi)
	}
}

// BenchmarkFig26SocialBaseline and ...Beldi regenerate a Figure 26 point:
// the social media site under load (Appendix C).
func BenchmarkFig26SocialBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSweepPoint(b, "social", beldi.ModeBaseline)
	}
}

// BenchmarkFig26SocialBeldi is the Beldi half of Figure 26.
func BenchmarkFig26SocialBeldi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSweepPoint(b, "social", beldi.ModeBeldi)
	}
}

// BenchmarkFig16GCEffect regenerates Figure 16's mechanism at benchmark
// scale: median write latency and DAAL depth with and without garbage
// collection over simulated minutes.
func BenchmarkFig16GCEffect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.Fig16(bench.Fig16Options{
			Minutes:        6,
			MinuteDuration: 100 * time.Millisecond,
			Rate:           80,
			Scale:          0.02,
			TsMinutes:      []int{1},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			last := len(s.Median) - 1
			b.ReportMetric(ms(s.Median[last]), "p50-ms-"+sanitize(s.Label))
			b.ReportMetric(float64(s.Rows[last]), "rows-"+sanitize(s.Label))
		}
	}
}

// BenchmarkQueueBatchSweep measures the durable event-queue subsystem's
// consume throughput across event-source-mapper batch sizes (the queue
// figure; full series via `figures -fig queue`). Each sub-benchmark drains a
// fixed backlog at one batch size.
func BenchmarkQueueBatchSweep(b *testing.B) {
	for _, batch := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := bench.QueueSweep(bench.QueueSweepOptions{
					Messages:   150,
					BatchSizes: []int{batch},
					Scale:      0.02,
					Seed:       1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pts[0].Throughput, "tput-msg/s")
				b.ReportMetric(float64(pts[0].Polls), "polls")
			}
		})
	}
}

// BenchmarkShardSweep measures committed logged-step throughput versus the
// store's shard count at fixed offered load, with the group-commit path off
// and on (the shard figure; full series via `figures -fig shard`). Each
// sub-benchmark runs one (shards, commit-mode) cell.
func BenchmarkShardSweep(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, batched := range []bool{false, true} {
			commit := "plain"
			if batched {
				commit = "batched"
			}
			b.Run(fmt.Sprintf("shards=%d/%s", shards, commit), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pts, err := bench.ShardSweep(bench.ShardSweepOptions{
						Shards:   []int{shards},
						Commit:   []bool{batched},
						Duration: 250 * time.Millisecond,
						Seed:     1,
					})
					if err != nil {
						b.Fatal(err)
					}
					for _, p := range pts {
						b.ReportMetric(p.Throughput, "tput-steps/s")
						b.ReportMetric(p.MeanBatch, "mean-batch")
					}
				}
			})
		}
	}
}

// BenchmarkFanoutSweep measures durable-promise fan-out/fan-in throughput
// (awaited worker results per second) versus fan-out width (the fanout
// figure; full series via `figures -fig fanout`). Each sub-benchmark runs
// one (width, mode) cell.
func BenchmarkFanoutSweep(b *testing.B) {
	for _, width := range []int{1, 4, 8, 16} {
		for _, mode := range []beldi.Mode{beldi.ModeBeldi, beldi.ModeBaseline} {
			b.Run(fmt.Sprintf("width=%d/%s", width, bench.ModeLabel(mode)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pts, err := bench.FanoutSweep(bench.FanoutSweepOptions{
						Widths:   []int{width},
						Modes:    []beldi.Mode{mode},
						Duration: 250 * time.Millisecond,
						Seed:     1,
					})
					if err != nil {
						b.Fatal(err)
					}
					for _, p := range pts {
						b.ReportMetric(p.Throughput, "tput-results/s")
						b.ReportMetric(ms(p.P50), "p50-ms")
					}
				}
			})
		}
	}
}

// BenchmarkFigOrdersEventPipeline measures the event-driven order pipeline
// under load: entry latency is the client-visible placement, while the
// pipeline drains through queues in the background.
func BenchmarkFigOrdersEventPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSweepPoint(b, "orders", beldi.ModeBeldi)
	}
}

// BenchmarkCostsAccounting regenerates the §7.3 storage/IO numbers.
func BenchmarkCostsAccounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Costs(20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.StoredBytesPerOpBeldi, "stored-B/op-beldi")
		b.ReportMetric(float64(rep.ReadBytesBeldi-rep.ReadBytesBaseline), "extra-read-B")
		b.ReportMetric(rep.StoreOpsPerWriteBeldi, "store-ops/write-beldi")
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ', r == '(', r == ')':
			// drop
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

// BenchmarkClusterSweep measures the multi-worker runtime's committed-step
// throughput per pool size over one shared store, with and without a worker
// killed mid-window (the cluster figure; full series via `figures -fig
// cluster`). Each sub-benchmark runs one (workers, kill) cell; kill cells
// include the exactly-once recovery drain.
func BenchmarkClusterSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		for _, kill := range []bool{false, true} {
			if kill && workers < 2 {
				continue
			}
			name := fmt.Sprintf("workers=%d", workers)
			if kill {
				name += "/kill"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					pts, err := bench.ClusterSweep(bench.ClusterSweepOptions{
						Workers:  []int{workers},
						Kill:     []bool{kill},
						Duration: 250 * time.Millisecond,
						Seed:     1,
					})
					if err != nil {
						b.Fatal(err)
					}
					for _, p := range pts {
						b.ReportMetric(p.Throughput, "tput-steps/s")
						b.ReportMetric(float64(p.Stolen), "stolen")
					}
				}
			})
		}
	}
}

// BenchmarkPipelineSweep measures committed logged-step throughput and
// per-invocation latency versus commit-pipeline depth on the memory
// substrate (the pipeline figure; full series via `figures -fig pipeline`).
// Depth 1 is the synchronous baseline; deeper cells run the speculation
// overlay and fence each reply on the durability watermark.
func BenchmarkPipelineSweep(b *testing.B) {
	for _, depth := range []int{1, 32, 256, 1024} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := bench.PipelineSweep(bench.PipelineSweepOptions{
					Depths:   []int{depth},
					Duration: 250 * time.Millisecond,
					Seed:     1,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range pts {
					b.ReportMetric(p.Throughput, "tput-steps/s")
					b.ReportMetric(ms(p.P50), "p50-ms")
					b.ReportMetric(p.MeanBatch, "mean-batch")
				}
			}
		})
	}
}

// BenchmarkBackendSweep measures committed logged-step throughput per
// storage backend: the in-memory store versus the durable WAL-backed store
// with fsync batching on and off (the backend figure; full series via
// `figures -fig backend`). Each sub-benchmark runs one backend cell.
func BenchmarkBackendSweep(b *testing.B) {
	for _, kind := range []bench.BackendKind{
		bench.BackendMemory, bench.BackendWALNoSync, bench.BackendWALBatched, bench.BackendWALEach,
	} {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := bench.BackendSweep(bench.BackendSweepOptions{
					Backends: []bench.BackendKind{kind},
					Duration: 250 * time.Millisecond,
					Seed:     1,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range pts {
					b.ReportMetric(p.Throughput, "tput-steps/s")
					b.ReportMetric(float64(p.Fsyncs), "fsyncs")
				}
			}
		})
	}
}
