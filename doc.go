// Package repro is a from-scratch Go reproduction of "Fault-tolerant and
// Transactional Stateful Serverless Workflows" (Beldi, OSDI 2020).
//
// The public API lives in package repro/beldi; the substrates (a sharded
// in-memory DynamoDB-like store with a group-commit write path, a
// goroutine-based serverless platform, and a durable message-queue
// subsystem with event-source triggers) and the Beldi core (linked DAAL,
// intent/garbage collectors, cross-SSF transactions) live under internal/.
// The benchmarks in bench_test.go and the cmd/figures binary regenerate
// every table and figure of the paper's evaluation; see ARCHITECTURE.md for
// the layer map and protocol lifecycles, README.md for the system
// inventory, and EXPERIMENTS.md for paper-versus-measured results.
package repro
