// Recovery: watch the intent collector finish a crashed workflow.
//
// A two-SSF workflow (a front SSF that invokes a payment SSF) is killed at
// a chosen operation boundary by the fault injector. The intent table shows
// the pending intent; one collector pass re-executes it; the logs ensure no
// effect is duplicated — the paper's §3's log-and-replay story, end to end.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/telemetry"
)

func main() {
	store := dynamo.NewStore()
	// Kill the first "front" instance right after its payment call returns.
	plan := &platform.CrashOnce{Function: "front", Label: "body:done"}
	plat := platform.New(platform.Options{Faults: plan})
	tel := beldi.NewTelemetry()
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Telemetry: tel,
		Config: beldi.Config{T: 50 * time.Millisecond, ICMinAge: time.Millisecond},
	})

	d.Function("payment", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		charged, err := e.Read("ledger", "charged")
		if err != nil {
			return beldi.Null, err
		}
		next := beldi.Int(charged.Int() + in.Int())
		if err := e.Write("ledger", "charged", next); err != nil {
			return beldi.Null, err
		}
		return next, nil
	}, "ledger")

	d.Function("front", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		total, err := e.SyncInvoke("payment", beldi.Int(42))
		if err != nil {
			return beldi.Null, err
		}
		if err := e.Write("orders", "last-total", total); err != nil {
			return beldi.Null, err
		}
		return total, nil
	}, "orders")

	fmt.Println("1. client sends the order; the worker is killed mid-flight ...")
	_, err := d.Invoke("front", beldi.Null)
	fmt.Printf("   client saw: %v\n", err)

	charged := read(d, "payment", "ledger", "charged")
	fmt.Printf("   payment ledger already charged: %v (the money moved!)\n", charged)

	fmt.Println("2. the intent collector finds the unfinished intent and re-executes ...")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := d.RunAllCollectors(); err != nil {
			log.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		if v := read(d, "front", "orders", "last-total"); !v.IsNull() {
			fmt.Printf("   order completed: last-total = %v\n", v)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("recovery did not complete")
		}
	}

	charged = read(d, "payment", "ledger", "charged")
	fmt.Printf("3. payment ledger after recovery: %v\n", charged)
	if charged.Int() == 42 {
		fmt.Println("   exactly-once: the replay reused the logged charge instead of repeating it")
	} else {
		fmt.Println("   DOUBLE CHARGE — this must never print")
	}

	// The whole story — pre-crash attempt, collector restart, replayed
	// steps — is one trace in the telemetry hub. CRASHED marks the killed
	// attempt, (restart) the collector's re-execution, (replay) every step
	// it resolved from the logs instead of redoing.
	fmt.Println("4. the same workflow as one causal trace:")
	// The collector's re-execution runs asynchronously; wait for its clean
	// exec span before rendering so the trace shows both attempts.
	for time.Now().Before(deadline) && !recovered(tel) {
		if err := d.RunAllCollectors(); err != nil {
			log.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	spans := tel.Tracer.Spans()
	for _, root := range telemetry.Roots(spans) {
		telemetry.Assemble(spans, root).Render(os.Stdout)
	}
}

// recovered reports whether the hub holds a clean (non-crashed) root
// execution of front — the collector's restart has finished.
func recovered(tel *beldi.Telemetry) bool {
	for _, s := range tel.Tracer.Spans() {
		if s.Kind == telemetry.KindExec && s.Fn == "front" && s.ParentIntent == "" && s.Err == "" {
			return true
		}
	}
	return false
}

// read peeks at an SSF's durable state via a one-off reader function the
// deployment registers lazily (data sovereignty: reads go through the
// owner's runtime).
func read(d *beldi.Deployment, fn, table, key string) beldi.Value {
	rt := d.Runtime(fn)
	if rt == nil {
		log.Fatalf("no runtime %s", fn)
	}
	v, err := beldi.PeekState(rt, table, key)
	if err != nil {
		log.Fatal(err)
	}
	return v
}
