// Event-driven workflows: an order pipeline composed entirely of durable
// queue messages instead of direct calls.
//
// The frontend SSF registers an intent AND enqueues a durable message for
// each asynchronous edge; platform event-source mappers poll the queues in
// batches and trigger the consumer SSFs. A consumer killed mid-handler
// cannot ack, so its message reappears after the visibility timeout and the
// re-execution replays to exactly-once completion. A consumer that
// crash-loops burns its redelivery budget and the message is parked in the
// dead-letter queue — then redriven once the "bug" is fixed.
//
//	go run ./examples/orders
package main

import (
	"fmt"
	"log"
	"time"

	"repro/beldi"
	"repro/internal/apps/orders"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/queue"
)

func main() {
	store := dynamo.NewStore()
	plat := platform.New(platform.Options{})
	d := beldi.NewDeployment(beldi.DeploymentOptions{Store: store, Platform: plat})
	app := orders.Build(d)
	da := app.EnableEvents(orders.DefaultEventOptions())
	defer d.Stop()
	if err := app.Seed(); err != nil {
		log.Fatal(err)
	}

	// Kill the payment consumer once, mid-handler, right after it has
	// durably accrued the charge — the worst possible moment.
	fault := &platform.CrashOnce{Function: orders.FnPayment, Label: "write:post:0.000002"}
	plat.SetFaults(fault)

	fmt.Println("placing 5 orders (payment consumer will crash once mid-handler) ...")
	var ids []string
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("order-%d", i)
		_, err := d.Invoke(orders.FnFrontend, orders.PlaceRequest(
			id, orders.UserID(i), orders.ItemID(i), 1, 100))
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}

	if _, err := da.Drain(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	bm := da.Broker().Metrics()
	fmt.Printf("crash injected: %v; messages redelivered after visibility timeout: %d\n",
		fault.Fired(), bm.Redelivered.Load())

	tot, err := app.Totals(ids)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("totals: revenue=%d (want 500)  shipments=%d  notifications=%d — exactly once\n",
		tot.Revenue, tot.Shipments, tot.Notifications)

	// Poison: a notification consumer that crash-loops until "fixed".
	fmt.Println("\nplacing a poisoned order (notify consumer crash-loops) ...")
	app.ArmPoison(true)
	poisoned := "order-poison"
	if _, err := d.Invoke(orders.FnFrontend, orders.PlaceRequest(
		poisoned, orders.PoisonUser, orders.ItemID(0), 1, 7)); err != nil {
		log.Fatal(err)
	}
	if _, err := da.Drain(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	notifyQ := queue.QueueFor(orders.FnNotify)
	dead, _ := da.Broker().DeadLetters(notifyQ)
	fmt.Printf("dead-letter queue: %d message(s) after %d failed deliveries\n",
		len(dead), dead[0].ReceiveCount)

	fmt.Println("fixing the consumer and redriving the DLQ ...")
	app.ArmPoison(false)
	if _, err := da.Broker().Redrive(notifyQ); err != nil {
		log.Fatal(err)
	}
	if _, err := da.Drain(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	note, _ := beldi.PeekState(d.Runtime(orders.FnNotify), "inbox", "note."+poisoned)
	fmt.Printf("poisoned order notified exactly %d time(s)\n", note.Int())

	if err := d.FsckAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfsck: all protocol invariants hold")
}
