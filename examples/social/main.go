// Social: the social media workflow under steady load, with live garbage
// collection — the full Figure 1 architecture in one process.
//
// The example drives the DeathStarBench-style social network (compose
// posts, read timelines) at a constant request rate with Beldi's intent and
// garbage collectors running on their timers, then prints the latency
// distribution and the storage the GC reclaimed.
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/beldi"
	"repro/internal/apps/social"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/workload"
)

func main() {
	store := dynamo.NewStore(dynamo.WithLatency(dynamo.NewCloudLatency(0.05, 1)))
	plat := platform.New(platform.Options{ConcurrencyLimit: 10000})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{
			RowCap:     16,
			T:          500 * time.Millisecond,
			ICInterval: 500 * time.Millisecond,
			GCInterval: 500 * time.Millisecond,
		},
	})
	app := social.Build(d)
	if err := app.Seed(); err != nil {
		log.Fatal(err)
	}
	d.StartCollectors()
	defer d.Stop()

	fmt.Println("driving the social network at 120 req/s for 4s (55% home timeline,")
	fmt.Println("25% user timeline, 10% compose, 10% login), collectors live ...")
	res := workload.Run(workload.Options{
		Rate:     120,
		Duration: 4 * time.Second,
		Warmup:   500 * time.Millisecond,
	}, func(r *rand.Rand) error {
		_, err := d.Invoke(app.Entry(), app.Request(r))
		return err
	})

	fmt.Printf("\ncompleted %d requests (%.0f req/s), %d errors\n",
		res.Completed, res.Throughput(), res.Errors)
	fmt.Printf("latency: p50=%s p99=%s max=%s\n",
		res.Latency.Median().Round(100*time.Microsecond),
		res.Latency.P99().Round(100*time.Microsecond),
		res.Latency.Max().Round(100*time.Microsecond))
	fmt.Println("\nlatency distribution:")
	fmt.Print(res.Latency.Ascii(48))

	// Let the finished intents age past T, then drive two deterministic
	// collection passes (stamp, then reclaim).
	for i := 0; i < 3; i++ {
		time.Sleep(600 * time.Millisecond)
		if err := d.RunAllCollectors(); err != nil {
			log.Fatal(err)
		}
	}
	var intents, logs int
	for _, name := range store.TableNames() {
		n, err := store.TableItemCount(name)
		if err != nil {
			continue
		}
		switch {
		case hasSuffix(name, ".intent"):
			intents += n
		case hasSuffix(name, ".readlog"), hasSuffix(name, ".invokelog"):
			logs += n
		}
	}
	fmt.Printf("\nafter GC: %d pending/uncollected intents, %d log rows remain\n", intents, logs)
	fmt.Println("(every completed request's logs are reclaimed once T elapses)")
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
