// Quickstart: a stateful serverless counter with exactly-once semantics.
//
// The counter body is the canonical non-idempotent function: read, add one,
// write back. Run bare, a crash between the read and the write (or a
// platform retry after the write) corrupts the count. Run under Beldi, the
// same body is exactly-once no matter where it crashes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
)

// Counter is an ordinary SSF body written against Beldi's API (Figure 2 of
// the paper): drop-in replacements for the provider SDK's reads, writes and
// invocations.
func Counter(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
	v, err := e.Read("state", "hits")
	if err != nil {
		return beldi.Null, err
	}
	next := beldi.Int(v.Int() + 1)
	if err := e.Write("state", "hits", next); err != nil {
		return beldi.Null, err
	}
	return next, nil
}

func main() {
	// The substrates: an in-memory DynamoDB-like store and a serverless
	// platform. On AWS these would be DynamoDB and Lambda.
	store := dynamo.NewStore()
	plat := platform.New(platform.Options{})

	// Deploy the SSF with its own tables, intent collector and garbage
	// collector.
	d := beldi.NewDeployment(beldi.DeploymentOptions{Store: store, Platform: plat})
	d.Function("counter", Counter, "state")

	for i := 0; i < 3; i++ {
		out, err := d.Invoke("counter", beldi.Null)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("invocation %d → counter = %d\n", i+1, out.Int())
	}

	// Re-delivering a completed request (same instance id — what a client
	// retry with the provider's request id looks like) does NOT double
	// count: Beldi returns the recorded result.
	fmt.Println("\nre-delivering the last request id ...")
	// Deployment.Invoke assigns a fresh request id per call, so go through
	// the runtime to replay a fixed one.
	replay := func(id string) {
		out, err := plat.Invoke("counter", beldi.Map(map[string]beldi.Value{
			"Kind":       beldi.Str("call"),
			"InstanceId": beldi.Str(id),
			"Input":      beldi.Null,
		}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request %q → counter = %d\n", id, out.Int())
	}
	replay("retry-me")
	replay("retry-me") // same id: replayed, not re-executed
	out, _ := d.Invoke("counter", beldi.Null)
	fmt.Printf("fresh request   → counter = %d (the retry counted once)\n", out.Int())
}
