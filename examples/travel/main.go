// Travel: the paper's cross-SSF transaction demonstrated head to head.
//
// The travel reservation workflow books a hotel room and a flight seat in
// two independent SSFs. Under Beldi the booking runs as one distributed
// transaction with opacity — both reservations commit or neither does.
// Under the baseline the same application code runs without transactions
// and, under concurrency and sell-outs, hotel and flight inventories drift
// apart: the inconsistency §7.2 of the paper calls out.
//
//	go run ./examples/travel
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/beldi"
	"repro/internal/apps/travel"
	"repro/internal/dynamo"
	"repro/internal/platform"
)

func main() {
	for _, mode := range []beldi.Mode{beldi.ModeBeldi, beldi.ModeBaseline} {
		fmt.Printf("=== %s mode ===\n", mode)
		run(mode)
		fmt.Println()
	}
}

func run(mode beldi.Mode) {
	// Cloud-shaped store latency: the read-check-write races that break the
	// baseline need a realistic window between the read and the write.
	store := dynamo.NewStore(dynamo.WithLatency(dynamo.NewCloudLatency(0.3, 7)))
	plat := platform.New(platform.Options{ConcurrencyLimit: 10000})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: mode,
		Config: beldi.Config{LockRetryMax: 300},
	})
	app := travel.Build(d)
	app.Capacity = 3 // tight inventory so bookings contend and sell out
	if err := app.Seed(); err != nil {
		log.Fatal(err)
	}

	// 24 concurrent clients race to book the same hotel and flight, each
	// retrying on abort (wait-die kills the younger transaction; real
	// clients retry). Demand far exceeds the capacity of 3, so most must
	// ultimately fail — and the ones that succeed must hold BOTH halves.
	var wg sync.WaitGroup
	results := make(chan string, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for attempt := 0; attempt < 25; attempt++ {
				out, err := d.Invoke(travel.FnFrontend, beldi.Map(map[string]beldi.Value{
					"op":     beldi.Str("reserve"),
					"hotel":  beldi.Str("hotel-000"),
					"flight": beldi.Str("flight-000"),
				}))
				if err == nil && out.Str() == "booked" {
					results <- "booked"
					return
				}
			}
			results <- "gave up"
		}()
	}
	wg.Wait()
	close(results)
	counts := map[string]int{}
	for r := range results {
		counts[r]++
	}
	fmt.Printf("client outcomes: %v\n", counts)

	hotels, err := travel.AuditInventory(d, travel.FnReserveHotel)
	if err != nil {
		log.Fatal(err)
	}
	flights, err := travel.AuditInventory(d, travel.FnReserveFlight)
	if err != nil {
		log.Fatal(err)
	}
	total := int64(3 * travel.NumHotels)
	roomsBooked, seatsBooked := total-hotels, total-flights
	claimed := int64(counts["booked"])
	fmt.Printf("clients who hold a booking: %d\n", claimed)
	fmt.Printf("hotel rooms consumed:       %d (capacity was 3)\n", roomsBooked)
	fmt.Printf("flight seats consumed:      %d (capacity was 3)\n", seatsBooked)
	switch {
	case claimed == roomsBooked && roomsBooked == seatsBooked && claimed <= 3:
		fmt.Println("→ consistent: every confirmed booking holds exactly one room and one seat")
	case claimed > roomsBooked || claimed > seatsBooked:
		fmt.Println("→ INCONSISTENT: more confirmed bookings than inventory consumed (lost updates oversold the trip)")
	default:
		fmt.Println("→ INCONSISTENT: rooms and seats diverge (partial bookings)")
	}
}
