// Cluster: one storage server, three worker OS processes, one SIGKILL.
//
// This demo is the paper's deployment shape as real processes. It re-execs
// itself into a small fleet:
//
//   - one storaged process — a durable walstore served over the
//     internal/remote wire protocol (the data plane; what the paper runs on
//     DynamoDB),
//   - three worker processes — each dials the storage server, joins the
//     cluster pool, and drains the shared durable invocation queues (the
//     compute plane; `beldi-demo -worker` is the standalone spelling),
//   - and the orchestrator (this process), which enqueues 40 counter
//     workflows through an "ingest" SSF and then kills worker w1 with
//     SIGKILL — a real kill -9 on a real pid, mid-load.
//
// No process shares memory with any other; every byte of coordination
// (leases, intents, locks, queue messages) crosses TCP. The survivors'
// failure detectors notice w1's silent lease, steal its partitions, finish
// its in-flight workflows, and the durable queue redelivers its unacked
// messages — after which the audit reads every one of the 40 counters
// through the wire and finds each at exactly 1: nothing lost to the kill,
// nothing duplicated by the recovery.
//
//	go run ./examples/cluster
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/beldi"
	"repro/internal/apps/counterdemo"
	"repro/internal/platform"
	"repro/internal/remote"
	"repro/internal/walstore"
)

const (
	workers  = 3
	requests = 40
	leaseTTL = 500 * time.Millisecond
)

var protocolConfig = beldi.Config{T: 300 * time.Millisecond, ICMinAge: 10 * time.Millisecond}

var durableOpts = beldi.DurableAsyncOptions{
	VisibilityTimeout: time.Second,
	PollInterval:      20 * time.Millisecond,
}

func main() {
	role := flag.String("role", "", "internal: storaged | worker (set by re-exec)")
	dir := flag.String("dir", "", "storaged data directory")
	store := flag.String("store", "", "storaged address (worker role)")
	id := flag.String("id", "", "worker id")
	flag.Parse()
	switch *role {
	case "storaged":
		runStoraged(*dir)
	case "worker":
		runWorker(*store, *id)
	default:
		orchestrate()
	}
}

// runStoraged is the data plane: a walstore served over the wire protocol.
// (cmd/beldi-storaged is the full-featured standalone version.)
func runStoraged(dir string) {
	st, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LISTEN %s\n", lis.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	srv := remote.NewServer(st, remote.ServeOptions{})
	go srv.Serve(lis)
	<-sig
	srv.Close()
	st.Close()
}

// runWorker is the compute plane: dial the storage server, join the pool,
// serve until killed.
func runWorker(storeAddr, id string) {
	client, err := remote.Dial(storeAddr, remote.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	c := beldi.MustOpenCluster(beldi.ClusterOptions{
		Store:        client,
		LeaseTTL:     leaseTTL,
		Config:       protocolConfig,
		DurableAsync: &durableOpts,
	})
	w, err := c.JoinCluster(id, counterdemo.Register)
	if err != nil {
		log.Fatal(err)
	}
	w.Start()
	fmt.Printf("READY %s pid=%d\n", w.Worker().ID(), os.Getpid())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	w.Leave()
}

// spawn re-execs this binary in a role and returns the command plus a
// scanner over its stdout; stderr is passed through with a pid prefix.
func spawn(tag string, args ...string) (*exec.Cmd, *bufio.Scanner) {
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command(self, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	cmd.Stderr = prefixWriter(tag)
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	return cmd, bufio.NewScanner(out)
}

// prefixWriter labels a child's stderr lines.
func prefixWriter(tag string) io.Writer {
	pr, pw, _ := os.Pipe()
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			fmt.Printf("  [%s] %s\n", tag, sc.Text())
		}
	}()
	return pw
}

// await scans a child's stdout until a line starts with prefix, echoing
// everything else.
func await(sc *bufio.Scanner, prefix string) string {
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, prefix) {
			return line
		}
		fmt.Printf("  %s\n", line)
	}
	log.Fatalf("child exited before printing %q", prefix)
	return ""
}

func orchestrate() {
	dir, err := os.MkdirTemp("", "beldi-cluster-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Data plane first: one storage server process over a durable walstore.
	storaged, storagedOut := spawn("storaged", "-role", "storaged", "-dir", dir)
	defer storaged.Process.Kill()
	addr := strings.TrimPrefix(await(storagedOut, "LISTEN "), "LISTEN ")
	go func() { // drain remaining stdout
		for storagedOut.Scan() {
		}
	}()
	fmt.Printf("== storage plane ==\n  storaged pid=%d addr=%s dir=%s\n", storaged.Process.Pid, addr, dir)

	// Compute plane: three worker processes join the pool over the wire.
	fmt.Println("\n== compute plane ==")
	procs := make([]*exec.Cmd, workers)
	for i := 0; i < workers; i++ {
		id := fmt.Sprintf("w%d", i)
		cmd, out := spawn(id, "-role", "worker", "-store", addr, "-id", id)
		procs[i] = cmd
		fmt.Printf("  %s\n", await(out, "READY "))
		go func() {
			for out.Scan() {
			}
		}()
	}

	// The orchestrator is a gateway, not a pool member: a deployment over
	// the same remote store whose only job is running "ingest" (which
	// registers the intent and enqueues the counter message durably). It
	// starts no mappers and no collectors — the workers own all execution.
	client, err := remote.Dial(addr, remote.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store:    client,
		Platform: platform.New(platform.Options{}),
		Config:   protocolConfig,
	})
	counterdemo.Register(d)
	d.EnableDurableAsync(durableOpts)

	fmt.Printf("\ndriving %d workflows through ingest; kill -9 on w1 midway...\n", requests)
	for i := 0; i < requests; i++ {
		if i == requests/2 {
			if err := procs[1].Process.Signal(syscall.SIGKILL); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  >> SIGKILL sent to w1 (pid %d) — no cleanup, no goodbye\n", procs[1].Process.Pid)
		}
		if _, err := d.Invoke(counterdemo.FnIngest, counterdemo.Request(i)); err != nil {
			log.Fatalf("ingest %d: %v", i, err)
		}
	}
	go procs[1].Wait() // reap the corpse

	// Convergence: every counter at exactly 1, observed through the wire.
	fmt.Println("\nwaiting for the survivors to detect, steal, redeliver, and finish...")
	probe := d.Runtime(counterdemo.FnCounter)
	deadline := time.Now().Add(30 * time.Second)
	for {
		exact := 0
		for i := 0; i < requests; i++ {
			v, err := beldi.PeekState(probe, counterdemo.StateTable, counterdemo.Key(i))
			if err != nil {
				log.Fatal(err)
			}
			if v.Int() == 1 {
				exact++
			}
		}
		if exact == requests {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("recovery did not converge: %d/%d counters at exactly 1", exact, requests)
		}
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Println("\n== after recovery ==")
	stats := client.Stats().Snapshot()
	fmt.Printf("  orchestrator wire traffic: %d RPCs, %d retries, %d reconnects, p99 %v\n",
		stats.RPCs, stats.Retries, stats.Reconnects, client.RPCLatency().P99().Round(10*time.Microsecond))
	if sm, err := client.ServerMetrics(); err == nil {
		fmt.Printf("  storage server: %d ops total (%d conditional failures) across all processes\n",
			sm.TotalOps(), sm.CondFailures)
	}
	fmt.Printf("  all %d counters at exactly 1: exactly-once survived kill -9 across the network seam\n", requests)

	// Graceful teardown of the survivors and the storage server.
	for i, p := range procs {
		if i == 1 {
			continue
		}
		p.Process.Signal(syscall.SIGTERM)
		p.Wait()
	}
	storaged.Process.Signal(syscall.SIGTERM)
	storaged.Wait()
}
