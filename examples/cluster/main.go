// Cluster: four workers, one shared store, one staged kill.
//
// Four cluster workers join one pool over a shared in-memory backend, each
// with its own platform and its own registration of the same "counter" SSF.
// Partition ownership settles to a fair share; a load of 40 workflows is
// spread across all four entry points; halfway through, worker w2 is killed
// — every instance on its platform dies at its next operation boundary and
// its heartbeats stop.
//
// The survivors' failure detectors notice the silent lease, mark w2 dead,
// steal its partitions (bumping each partition's fencing epoch), and their
// collectors finish w2's in-flight workflows. The demo then audits the
// state: every one of the 40 counters is exactly 1 — nothing lost to the
// kill, nothing duplicated by the recovery.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
)

// register installs the demo SSF: each request increments its own counter
// key — an effect that makes lost or duplicated executions directly
// countable.
func register(d *beldi.Deployment) {
	d.Function("counter", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		key := in.Map()["key"].Str()
		v, err := e.Read("state", key)
		if err != nil {
			return beldi.Null, err
		}
		next := beldi.Int(v.Int() + 1)
		if err := e.Write("state", key, next); err != nil {
			return beldi.Null, err
		}
		return next, nil
	}, "state")
}

func main() {
	store := dynamo.NewStore()
	c := beldi.MustOpenCluster(beldi.ClusterOptions{
		Store:      store,
		Partitions: 8,
		LeaseTTL:   100 * time.Millisecond,
		Config:     beldi.Config{T: 30 * time.Millisecond},
	})

	// Four workers join; each is a whole "machine": platform + registry +
	// collectors + lease.
	var workers []*beldi.ClusterWorker
	for i := 0; i < 4; i++ {
		w, err := c.JoinCluster(fmt.Sprintf("w%d", i), register)
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
	}
	// Settle ownership, then start the background loops.
	for round := 0; round < 5; round++ {
		for _, w := range workers {
			if _, _, err := w.Worker().RebalanceOnce(); err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, w := range workers {
		w.Start()
	}
	fmt.Println("== pool ==")
	for _, w := range workers {
		fmt.Printf("  %s owns partitions %v\n", w.Worker().ID(), w.Worker().OwnedPartitions())
	}

	// Drive 40 workflows round-robin across all four entry points; kill w2
	// halfway through.
	const requests = 40
	fmt.Printf("\ndriving %d workflows; killing w2 after %d...\n", requests, requests/2)
	failed := 0
	for i := 0; i < requests; i++ {
		if i == requests/2 {
			workers[2].Kill()
			fmt.Println("  >> w2 killed (in-flight instances die, heartbeats stop)")
		}
		w := workers[i%4]
		req := beldi.Map(map[string]beldi.Value{"key": beldi.Str(fmt.Sprintf("k%02d", i))})
		if _, err := w.Invoke("counter", req); err != nil {
			failed++ // the killed worker's callers see the crash; recovery is the pool's job
		}
	}
	fmt.Printf("  %d/%d client calls failed at the killed worker\n", failed, requests)

	// Wait for the survivors to detect, steal, and finish the orphans.
	probe := workers[0].Deployment().Runtime("counter")
	deadline := time.Now().Add(10 * time.Second)
	for {
		exact := 0
		for i := 0; i < requests; i++ {
			v, err := beldi.PeekState(probe, "state", fmt.Sprintf("k%02d", i))
			if err != nil {
				log.Fatal(err)
			}
			if v.Int() == 1 {
				exact++
			}
		}
		if exact == requests {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("recovery did not converge: %d/%d counters at exactly 1", exact, requests)
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println("\n== after recovery ==")
	ws, err := workers[0].Worker().Workers()
	if err != nil {
		log.Fatal(err)
	}
	for _, wi := range ws {
		fmt.Printf("  %-4s state=%-4s epoch=%d\n", wi.ID, wi.State, wi.Epoch)
	}
	steals := int64(0)
	for i, w := range workers {
		if i == 2 {
			continue
		}
		steals += w.Worker().Stats().Steals.Load()
	}
	fmt.Printf("  partitions stolen from the dead worker: %d\n", steals)
	fmt.Printf("  all %d counters at exactly 1: exactly-once survived the kill\n", requests)

	for i, w := range workers {
		if i != 2 {
			w.Stop()
		}
	}
}
