// Restart: recover a crashed workflow from nothing but the WAL directory.
//
// Phase 1 runs a two-SSF payment workflow on the durable walstore backend
// and kills the front SSF mid-flight — after the money moved, before the
// order was recorded. Then it throws away every live object (store,
// platform, deployment: a hard process exit in miniature; nothing is
// closed, nothing flushed beyond what each commit already fsynced).
//
// Phase 2 reopens the directory cold: the write-ahead log replays into a
// fresh store, the rebuilt deployment adopts the recovered tables — the
// pending intent included — and the intent collector finishes the workflow
// exactly once.
//
//	go run ./examples/restart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/beldi"
	"repro/internal/platform"
	"repro/internal/walstore"
)

// register wires the workflow onto a deployment: "payment" moves money,
// "front" calls it and records the order.
func register(d *beldi.Deployment) {
	d.Function("payment", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		charged, err := e.Read("ledger", "charged")
		if err != nil {
			return beldi.Null, err
		}
		next := beldi.Int(charged.Int() + in.Int())
		if err := e.Write("ledger", "charged", next); err != nil {
			return beldi.Null, err
		}
		return next, nil
	}, "ledger")
	d.Function("front", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		total, err := e.SyncInvoke("payment", beldi.Int(42))
		if err != nil {
			return beldi.Null, err
		}
		if err := e.Write("orders", "last-total", total); err != nil {
			return beldi.Null, err
		}
		return total, nil
	}, "orders")
}

func main() {
	dir, err := os.MkdirTemp("", "beldi-restart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := beldi.Config{T: 50 * time.Millisecond, ICMinAge: time.Millisecond}

	// --- Phase 1: run on the durable backend, die mid-flight ------------
	fmt.Printf("1. opening WAL-backed store in %s\n", dir)
	store1, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plat1 := platform.New(platform.Options{Faults: &platform.CrashOnce{Function: "front", Label: "body:done"}})
	d1 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store1, Platform: plat1, Config: cfg})
	register(d1)

	fmt.Println("2. client sends the order; the worker is killed mid-flight ...")
	_, err = d1.Invoke("front", beldi.Null)
	fmt.Printf("   client saw: %v\n", err)
	charged, err := beldi.PeekState(d1.Runtime("payment"), "ledger", "charged")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   payment ledger already charged: %v (the money moved!)\n", charged)
	fmt.Printf("   WAL so far: %d records in %d bytes, %d fsyncs\n",
		store1.WAL().Records.Load(), store1.WAL().BytesAppended.Load(), store1.WAL().Fsyncs.Load())

	fmt.Println("3. hard exit: store, platform and deployment are abandoned, not closed.")
	plat1.Drain()
	store1, plat1, d1 = nil, nil, nil //nolint:ineffassign,wastedassign // the point: nothing survives but the directory

	// --- Phase 2: cold restart from the directory alone -----------------
	fmt.Println("4. reopening the directory cold; the log replays into a fresh store ...")
	store2, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   recovered %d records (%d torn bytes discarded)\n",
		store2.WAL().RecoveredRecords.Load(), store2.WAL().TruncatedBytes.Load())
	plat2 := platform.New(platform.Options{})
	d2 := beldi.NewDeployment(beldi.DeploymentOptions{Store: store2, Platform: plat2, Config: cfg})
	register(d2) // tables (and the pending intent) are adopted, not re-created

	fmt.Println("5. the intent collector finds the recovered intent and finishes it ...")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := d2.RunAllCollectors(); err != nil {
			log.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		v, err := beldi.PeekState(d2.Runtime("front"), "orders", "last-total")
		if err != nil {
			log.Fatal(err)
		}
		if !v.IsNull() {
			fmt.Printf("   order completed: last-total = %v\n", v)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("recovery did not complete")
		}
	}

	charged, err = beldi.PeekState(d2.Runtime("payment"), "ledger", "charged")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6. payment ledger after the restart: %v\n", charged)
	if charged.Int() == 42 {
		fmt.Println("   exactly-once: the replay reused the logged charge instead of repeating it")
	} else {
		fmt.Println("   DOUBLE CHARGE — this must never print")
	}
	if err := d2.FsckAll(); err != nil {
		log.Fatalf("beldi fsck: %v", err)
	}
	if err := store2.Close(); err != nil {
		log.Fatal(err)
	}
	if err := walstore.Fsck(dir); err != nil {
		log.Fatalf("walstore fsck: %v", err)
	}
	fmt.Println("7. beldi fsck and walstore fsck both clean.")
}
