// Fan-out/fan-in: typed API + durable promises surviving a driver crash.
//
// A word-count driver fans one typed mapper invocation per document out
// with Func.Async, then awaits all the promises. The fault injector kills
// the driver mid-fan-in; the intent collector re-executes it, the replayed
// awaits return the identical results the mappers posted into the driver's
// durable mailbox, and the merged totals commit exactly once. A context
// with a deadline bounds the client's patience without ever weakening the
// guarantee.
//
//	go run ./examples/fanout
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/beldi"
	"repro/internal/apps/fanout"
	"repro/internal/dynamo"
	"repro/internal/platform"
)

func main() {
	store := dynamo.NewStore()
	// Kill the first reduce instance at its 28th operation boundary — a few
	// awaits into the fan-in.
	plan := &platform.CrashNthOp{Function: fanout.FnReduce, N: 28}
	plat := platform.New(platform.Options{Faults: plan})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{T: 50 * time.Millisecond, ICMinAge: time.Millisecond},
	})
	app := fanout.Build(d)

	job := fanout.Job{Docs: []fanout.Doc{
		{ID: "d0", Text: "serverless workflows want fault tolerance"},
		{ID: "d1", Text: "exactly once means exactly once"},
		{ID: "d2", Text: "fan out then fan in"},
		{ID: "d3", Text: "promises survive crashes"},
		{ID: "d4", Text: "the mailbox keeps the first result"},
		{ID: "d5", Text: "replay observes identical results"},
		{ID: "d6", Text: "once registered an intent always finishes"},
		{ID: "d7", Text: "fan out wide and sleep well"},
	}}

	fmt.Println("1. client submits the 8-document job; the driver is killed mid-fan-in ...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := app.Reduce.InvokeCtx(ctx, job); err != nil {
		fmt.Printf("   client saw: %v\n", err)
	}

	fmt.Println("2. the intent collector resumes the driver; awaits replay the posted results ...")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := d.RunAllCollectors(); err != nil {
			log.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		totals, err := fanout.Totals(d)
		if err != nil {
			log.Fatal(err)
		}
		if len(totals) > 0 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("recovery did not complete")
		}
	}

	totals, err := fanout.Totals(d)
	if err != nil {
		log.Fatal(err)
	}
	top, err := fanout.TopWords(d, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3. merged totals committed exactly once:")
	for _, w := range top {
		fmt.Printf("   %-10s %d\n", w, totals[w])
	}
	if totals["once"] == 3 && totals["fan"] == 3 {
		fmt.Println("   exactly-once: every mapper counted one time, no double merge")
	} else {
		fmt.Printf("   UNEXPECTED COUNTS (once=%d fan=%d) — this must never print\n", totals["once"], totals["fan"])
	}
	if err := d.FsckAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("4. fsck: durable state clean (no leaked cells, logs, or locks)")
}
