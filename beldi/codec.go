package beldi

import (
	"fmt"
	"reflect"
)

// The Value codec behind the typed facade (TableOf, RegisterFunc): a
// reflection-based, deterministic mapping between Go values and the
// dynamic Value type the runtime stores and logs. The mapping is
// structural — structs become map Values keyed by field name (or the
// `beldi:"name"` tag), slices become lists, integers and floats become
// numbers — so a typed Put and a hand-built dynamic Map(...) of the same
// shape produce byte-identical stored state, which is what the
// typed-vs-dynamic equivalence property test pins.

// ToValue converts a Go value into a dynamic Value.
//
// Supported kinds: bool, all int/uint widths, float32/64, string, []byte,
// slices/arrays, maps with string keys, structs (exported fields; a
// `beldi:"-"` tag skips a field, `beldi:"name"` renames it), pointers
// (nil becomes Null), and Value itself (passed through). Unsupported
// kinds (chan, func, complex, interface holding nothing) return an error.
func ToValue(v any) (Value, error) {
	if v == nil {
		return Null, nil
	}
	if val, ok := v.(Value); ok {
		return val, nil
	}
	return toValue(reflect.ValueOf(v))
}

var valueType = reflect.TypeOf(Value{})

func toValue(rv reflect.Value) (Value, error) {
	if rv.Type() == valueType {
		return rv.Interface().(Value), nil
	}
	switch rv.Kind() {
	case reflect.Bool:
		return BoolVal(rv.Bool()), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return Int(rv.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return Int(int64(rv.Uint())), nil
	case reflect.Float32, reflect.Float64:
		return Num(rv.Float()), nil
	case reflect.String:
		return Str(rv.String()), nil
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return Null, nil
		}
		return toValue(rv.Elem())
	case reflect.Slice:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			return Bytes(append([]byte(nil), rv.Bytes()...)), nil
		}
		fallthrough
	case reflect.Array:
		elems := make([]Value, rv.Len())
		for i := 0; i < rv.Len(); i++ {
			ev, err := toValue(rv.Index(i))
			if err != nil {
				return Null, err
			}
			elems[i] = ev
		}
		return List(elems...), nil
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return Null, fmt.Errorf("beldi: ToValue: map key type %s is not string", rv.Type().Key())
		}
		m := make(map[string]Value, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			ev, err := toValue(iter.Value())
			if err != nil {
				return Null, err
			}
			m[iter.Key().String()] = ev
		}
		return Map(m), nil
	case reflect.Struct:
		m := make(map[string]Value)
		t := rv.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name := fieldName(f)
			if name == "" {
				continue
			}
			ev, err := toValue(rv.Field(i))
			if err != nil {
				return Null, fmt.Errorf("field %s: %w", f.Name, err)
			}
			m[name] = ev
		}
		return Map(m), nil
	default:
		return Null, fmt.Errorf("beldi: ToValue: unsupported kind %s", rv.Kind())
	}
}

// FromValue converts a dynamic Value back into *out, the inverse of
// ToValue. Null decodes to the zero value (and to nil for pointers);
// numbers decode into any numeric kind; missing map keys leave struct
// fields at their zero value, mirroring how never-written table keys read
// as Null.
func FromValue(v Value, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("beldi: FromValue: out must be a non-nil pointer, got %T", out)
	}
	return fromValue(v, rv.Elem())
}

func fromValue(v Value, rv reflect.Value) error {
	if rv.Type() == valueType {
		rv.Set(reflect.ValueOf(v))
		return nil
	}
	if rv.Kind() == reflect.Pointer {
		if v.IsNull() {
			rv.SetZero()
			return nil
		}
		if rv.IsNil() {
			rv.Set(reflect.New(rv.Type().Elem()))
		}
		return fromValue(v, rv.Elem())
	}
	if v.IsNull() {
		rv.SetZero()
		return nil
	}
	switch rv.Kind() {
	case reflect.Bool:
		rv.SetBool(v.BoolVal())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		rv.SetInt(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		rv.SetUint(uint64(v.Int()))
	case reflect.Float32, reflect.Float64:
		rv.SetFloat(v.Num())
	case reflect.String:
		rv.SetString(v.Str())
	case reflect.Slice:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			rv.SetBytes(append([]byte(nil), v.BytesVal()...))
			return nil
		}
		list := v.List()
		out := reflect.MakeSlice(rv.Type(), len(list), len(list))
		for i, ev := range list {
			if err := fromValue(ev, out.Index(i)); err != nil {
				return err
			}
		}
		rv.Set(out)
	case reflect.Array:
		list := v.List()
		if len(list) != rv.Len() {
			return fmt.Errorf("beldi: FromValue: list of %d elements into array %s", len(list), rv.Type())
		}
		for i, ev := range list {
			if err := fromValue(ev, rv.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return fmt.Errorf("beldi: FromValue: map key type %s is not string", rv.Type().Key())
		}
		m := v.Map()
		out := reflect.MakeMapWithSize(rv.Type(), len(m))
		for k, ev := range m {
			ov := reflect.New(rv.Type().Elem()).Elem()
			if err := fromValue(ev, ov); err != nil {
				return err
			}
			out.SetMapIndex(reflect.ValueOf(k), ov)
		}
		rv.Set(out)
	case reflect.Struct:
		t := rv.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name := fieldName(f)
			if name == "" {
				continue
			}
			fv, ok := v.MapGet(name)
			if !ok {
				rv.Field(i).SetZero()
				continue
			}
			if err := fromValue(fv, rv.Field(i)); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
	default:
		return fmt.Errorf("beldi: FromValue: unsupported kind %s", rv.Kind())
	}
	return nil
}

// fieldName resolves a struct field's Value map key: the `beldi` tag when
// present ("" means the Go field name, "-" skips the field).
func fieldName(f reflect.StructField) string {
	tag, ok := f.Tag.Lookup("beldi")
	if !ok {
		return f.Name
	}
	if tag == "-" {
		return ""
	}
	return tag
}
