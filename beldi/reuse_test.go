package beldi_test

import (
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/uuid"
)

// SSF reusability (§2.2): one SSF serves several applications at the same
// time, keeping each application's state in separate tables while still
// supporting shared cross-application state.

func counterOn(table string) beldi.Body {
	return func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		v, err := e.Read(table, "hits")
		if err != nil {
			return beldi.Null, err
		}
		next := beldi.Int(v.Int() + 1)
		if err := e.Write(table, "hits", next); err != nil {
			return beldi.Null, err
		}
		// A shared, app-agnostic counter too (cross-application state).
		g, err := e.Read("global", "hits")
		if err != nil {
			return beldi.Null, err
		}
		if err := e.Write("global", "hits", beldi.Int(g.Int()+1)); err != nil {
			return beldi.Null, err
		}
		return next, nil
	}
}

func TestSharedSSFKeepsPerAppState(t *testing.T) {
	store := dynamo.NewStore()
	plat := platform.New(platform.Options{IDs: &uuid.Seq{Prefix: "req"}})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{T: 50 * time.Millisecond},
	})
	// One SSF, registered with per-application tables for "shop" and
	// "blog", plus an unscoped "global" table.
	d.Function("counter", counterOn("state"),
		"state", "shop:state", "blog:state", "global")

	for i := 0; i < 3; i++ {
		if out, err := d.InvokeApp("counter", "shop", beldi.Null); err != nil || out.Int() != int64(i+1) {
			t.Fatalf("shop %d: %v %v", i, out, err)
		}
	}
	if out, err := d.InvokeApp("counter", "blog", beldi.Null); err != nil || out.Int() != 1 {
		t.Fatalf("blog: %v %v (state bled across applications)", out, err)
	}
	// An app with no scoped table falls back to the shared table, as does
	// an app-less request.
	if out, err := d.InvokeApp("counter", "wiki", beldi.Null); err != nil || out.Int() != 1 {
		t.Fatalf("wiki: %v %v", out, err)
	}
	if out, err := d.Invoke("counter", beldi.Null); err != nil || out.Int() != 2 {
		t.Fatalf("unscoped: %v %v", out, err)
	}
	// Cross-application state saw every request.
	rt := d.Runtime("counter")
	if g, _ := beldi.PeekState(rt, "global", "hits"); g.Int() != 6 {
		t.Errorf("global = %v, want 6", g)
	}
	// Per-app state is held in distinct tables.
	if v, _ := beldi.PeekState(rt, "shop:state", "hits"); v.Int() != 3 {
		t.Errorf("shop = %v", v)
	}
	if v, _ := beldi.PeekState(rt, "blog:state", "hits"); v.Int() != 1 {
		t.Errorf("blog = %v", v)
	}
	if v, _ := beldi.PeekState(rt, "state", "hits"); v.Int() != 2 {
		t.Errorf("shared = %v", v)
	}
}

func TestAppContextPropagatesThroughWorkflow(t *testing.T) {
	store := dynamo.NewStore()
	plat := platform.New(platform.Options{IDs: &uuid.Seq{Prefix: "req"}})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{T: 50 * time.Millisecond},
	})
	d.Function("backend", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		v, err := e.Read("state", "n")
		if err != nil {
			return beldi.Null, err
		}
		if err := e.Write("state", "n", beldi.Int(v.Int()+1)); err != nil {
			return beldi.Null, err
		}
		return beldi.Str(e.App()), nil
	}, "state", "shop:state")
	d.Function("frontend", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		return e.SyncInvoke("backend", in)
	})
	out, err := d.InvokeApp("frontend", "shop", beldi.Null)
	if err != nil || out.Str() != "shop" {
		t.Fatalf("app context lost across the hop: %v %v", out, err)
	}
	rt := d.Runtime("backend")
	if v, _ := beldi.PeekState(rt, "shop:state", "n"); v.Int() != 1 {
		t.Errorf("scoped write landed elsewhere: %v", v)
	}
	if v, _ := beldi.PeekState(rt, "state", "n"); !v.IsNull() {
		t.Errorf("shared table touched: %v", v)
	}
}

func TestAppStateSurvivesRecovery(t *testing.T) {
	// The app context is stored with the intent's args, so collector
	// re-executions write to the same application's tables.
	plan := &platform.CrashOnce{Function: "backend", Label: "write:post:0.000002"}
	store := dynamo.NewStore()
	plat := platform.New(platform.Options{IDs: &uuid.Seq{Prefix: "req"}, Faults: plan})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{T: 20 * time.Millisecond, ICMinAge: time.Millisecond},
	})
	d.Function("backend", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		v, err := e.Read("state", "n")
		if err != nil {
			return beldi.Null, err
		}
		return beldi.Str("ok"), e.Write("state", "n", beldi.Int(v.Int()+1))
	}, "state", "shop:state")

	d.InvokeApp("backend", "shop", beldi.Null) //nolint:errcheck // crash injected
	deadline := time.Now().Add(5 * time.Second)
	rt := d.Runtime("backend")
	for {
		time.Sleep(2 * time.Millisecond)
		if err := d.RunAllCollectors(); err != nil {
			t.Fatal(err)
		}
		if v, _ := beldi.PeekState(rt, "shop:state", "n"); v.Int() == 1 {
			break
		}
		if time.Now().After(deadline) {
			v, _ := beldi.PeekState(rt, "shop:state", "n")
			t.Fatalf("recovery wrote %v to shop:state", v)
		}
	}
	if v, _ := beldi.PeekState(rt, "state", "n"); !v.IsNull() {
		t.Errorf("recovery leaked into the shared table: %v", v)
	}
}
