package beldi_test

import (
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// These tests cover the durable (queue-backed) AsyncInvoke path end to end:
// the intent-table registration of §4.5 paired with a durable queue message,
// drained by platform event-source mappers, with Beldi's instance-id dedup
// turning at-least-once delivery into exactly-once execution.

type durableRig struct {
	store storage.Backend
	plat  *platform.Platform
	d     *beldi.Deployment
	da    *beldi.DurableAsync
}

func newDurableRig(t *testing.T, parentBody, childBody beldi.Body) *durableRig {
	t.Helper()
	store := storagetest.Open(t)
	plat := platform.New(platform.Options{})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{T: 50 * time.Millisecond, ICMinAge: time.Nanosecond},
	})
	d.Function("parent", parentBody)
	d.Function("child", childBody, "state")
	da := d.EnableDurableAsync(beldi.DurableAsyncOptions{
		VisibilityTimeout: 20 * time.Millisecond,
		BatchSize:         4,
	})
	t.Cleanup(d.Stop)
	return &durableRig{store: store, plat: plat, d: d, da: da}
}

func asyncParent(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	if err := e.AsyncInvoke("child", in); err != nil {
		return beldi.Null, err
	}
	return beldi.Str("registered"), nil
}

func countingChild(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	// Batched mappers deliver concurrently, so the shared counter's
	// read-modify-write needs the item lock to count every run.
	if err := e.Lock("state", "count"); err != nil {
		return beldi.Null, err
	}
	n, err := e.Read("state", "count")
	if err != nil {
		return beldi.Null, err
	}
	if err := e.Write("state", "count", beldi.Int(n.Int()+1)); err != nil {
		return beldi.Null, err
	}
	if err := e.Unlock("state", "count"); err != nil {
		return beldi.Null, err
	}
	return beldi.Str("done"), nil
}

func (r *durableRig) count(t *testing.T) int64 {
	t.Helper()
	v, err := beldi.PeekState(r.d.Runtime("child"), "state", "count")
	if err != nil {
		t.Fatal(err)
	}
	return v.Int()
}

func TestDurableAsyncDeliversThroughQueue(t *testing.T) {
	r := newDurableRig(t, asyncParent, countingChild)

	if _, err := r.d.Invoke("parent", beldi.Null); err != nil {
		t.Fatal(err)
	}
	// The handoff is durable: nothing has polled yet, so the work sits in
	// the child's invocation queue rather than any goroutine.
	if depth, _ := r.da.Depth(); depth != 1 {
		t.Fatalf("queue depth = %d before polling, want 1", depth)
	}
	if r.count(t) != 0 {
		t.Fatal("child ran before any mapper poll")
	}
	processed, failed, err := r.da.PollAll()
	if err != nil || processed != 1 || failed != 0 {
		t.Fatalf("PollAll = (%d, %d, %v), want (1, 0, nil)", processed, failed, err)
	}
	if got := r.count(t); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if depth, _ := r.da.Depth(); depth != 0 {
		t.Fatalf("queue depth = %d after delivery, want 0", depth)
	}
	if err := r.d.FsckAll(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableAsyncDuplicateEnqueueIsDeduped crashes the caller after the
// enqueue: its re-execution (by the intent collector) cannot tell whether
// the message made it out, re-enqueues, and the callee's intent dedup
// absorbs the duplicate — at-least-once delivery, exactly-once execution.
func TestDurableAsyncDuplicateEnqueueIsDeduped(t *testing.T) {
	r := newDurableRig(t, asyncParent, countingChild)
	r.plat.SetFaults(&platform.CrashOnce{Function: "parent", Label: "ainvoke:post:0.000001"})

	if _, err := r.d.Invoke("parent", beldi.Null); err == nil {
		t.Fatal("expected the injected crash to surface")
	}
	time.Sleep(60 * time.Millisecond) // age past ICMinAge
	if _, err := r.d.Runtime("parent").RunIntentCollector(); err != nil {
		t.Fatal(err)
	}
	r.plat.Drain()
	if depth, _ := r.da.Depth(); depth != 2 {
		t.Fatalf("queue depth = %d, want 2 (original + re-executed enqueue)", depth)
	}
	if _, err := r.da.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := r.count(t); got != 1 {
		t.Fatalf("count = %d, want exactly 1 despite duplicate message", got)
	}
	if err := r.d.FsckAll(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableAsyncSurvivesCallerCrashBeforeFire crashes the caller between
// intent registration and the enqueue — the Figure 20 window where the seed's
// in-process handoff would simply never happen. The registered intent plus
// collector re-execution produces the durable message, and the workflow
// completes exactly once.
func TestDurableAsyncSurvivesCallerCrashBeforeFire(t *testing.T) {
	r := newDurableRig(t, asyncParent, countingChild)
	r.plat.SetFaults(&platform.CrashOnce{Function: "parent", Label: "ainvoke:mid:0.000001"})

	if _, err := r.d.Invoke("parent", beldi.Null); err == nil {
		t.Fatal("expected the injected crash to surface")
	}
	if depth, _ := r.da.Depth(); depth != 0 {
		t.Fatalf("queue depth = %d, want 0 (crash happened before the enqueue)", depth)
	}
	time.Sleep(60 * time.Millisecond)
	if _, err := r.d.Runtime("parent").RunIntentCollector(); err != nil {
		t.Fatal(err)
	}
	r.plat.Drain()
	if _, err := r.da.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := r.count(t); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

// TestDurableAsyncBackgroundMappers runs the mappers' own poll loops:
// fan out many async invocations and wait for all to land exactly once.
func TestDurableAsyncBackgroundMappers(t *testing.T) {
	markingChild := func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		key := in.Map()["key"].Str()
		n, err := e.Read("state", key)
		if err != nil {
			return beldi.Null, err
		}
		if err := e.Write("state", key, beldi.Int(n.Int()+1)); err != nil {
			return beldi.Null, err
		}
		return beldi.Null, nil
	}
	r := newDurableRig(t, asyncParent, markingChild)
	r.da.Start()
	defer r.da.Stop()

	const n = 24
	for i := 0; i < n; i++ {
		if _, err := r.d.Invoke("parent", beldi.Map(map[string]beldi.Value{
			"key": beldi.Str(key(i)),
		})); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if depth, _ := r.da.Depth(); depth == 0 {
			done := true
			for i := 0; i < n; i++ {
				v, err := beldi.PeekState(r.d.Runtime("child"), "state", key(i))
				if err != nil {
					t.Fatal(err)
				}
				if v.Int() > 1 {
					t.Fatalf("key %s executed %d times", key(i), v.Int())
				}
				if v.Int() != 1 {
					done = false
				}
			}
			if done {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("background mappers did not drain the fan-out in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func key(i int) string {
	return "k" + string(rune('a'+i%26)) + string(rune('a'+i/26))
}

// TestDurableAsyncPromiseFanIn runs durable promises over the queue-backed
// transport: the fan-out's run envelopes become queue messages (carrying
// the reply coordinates), background mappers deliver them, and the
// parent's awaits resolve from the posted mailbox cells — promises and
// durable async compose.
func TestDurableAsyncPromiseFanIn(t *testing.T) {
	promiseParent := func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		ps := make([]*beldi.Promise, 3)
		for i := range ps {
			p, err := e.AsyncInvokePromise("child", beldi.Null)
			if err != nil {
				return beldi.Null, err
			}
			ps[i] = p
		}
		outs, err := e.AwaitAll(ps...)
		if err != nil {
			return beldi.Null, err
		}
		return beldi.Int(int64(len(outs))), nil
	}
	r := newDurableRig(t, promiseParent, countingChild)
	r.da.Start()
	defer r.da.Stop()

	out, err := r.d.Invoke("parent", beldi.Null)
	if err != nil {
		t.Fatal(err)
	}
	if out.Int() != 3 {
		t.Fatalf("fan-in resolved %v promises, want 3", out)
	}
	r.plat.Drain()
	if got := r.count(t); got != 3 {
		t.Fatalf("child ran %d times, want 3", got)
	}
	if err := r.d.FsckAll(); err != nil {
		t.Fatal(err)
	}
}
