// Package stepfn provides declarative workflow definitions — the paper's
// "step functions" (§2.1), the alternative to hand-written driver
// functions for composing SSFs. A workflow is a tree of states (task,
// sequence, parallel, choice, transaction); Register compiles it into a
// Beldi driver SSF whose interpretation is deterministic, so the whole
// workflow inherits exactly-once semantics.
//
// Transactional subgraphs follow §6.2's "Supporting step functions"
// (Figure 21): wrapping a subgraph in Txn plays the role of the 'begin'
// and 'end' SSFs the paper has developers insert — every SSF invoked
// inside executes under the same transaction context, and the end of the
// subgraph kicks off the commit or abort propagation.
//
// Example — the travel reservation workflow of Figure 22:
//
//	w := stepfn.Sequence(
//	    stepfn.Task("check-user"),
//	    stepfn.Txn(stepfn.Sequence(
//	        stepfn.Task("reserve-hotel"),
//	        stepfn.Task("reserve-flight"),
//	    )),
//	)
//	stepfn.Register(d, "book-trip", w)
package stepfn

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/beldi"
)

// State is one node of a workflow definition.
type State interface {
	// run interprets the state. Interpretation must be deterministic: all
	// external effects go through the Env.
	run(e *beldi.Env, input beldi.Value) (beldi.Value, error)
	// describe renders the state for documentation and diffing.
	describe() string
}

// Task invokes one SSF, passing the state's input and yielding its output.
func Task(function string) State { return taskState{fn: function} }

type taskState struct{ fn string }

func (s taskState) run(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
	return e.SyncInvoke(s.fn, input)
}
func (s taskState) describe() string { return fmt.Sprintf("task(%s)", s.fn) }

// Sequence runs states in order, feeding each state's output to the next.
func Sequence(states ...State) State { return seqState{states} }

type seqState struct{ states []State }

func (s seqState) run(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
	cur := input
	for _, st := range s.states {
		out, err := st.run(e, cur)
		if err != nil {
			return beldi.Null, err
		}
		cur = out
	}
	return cur, nil
}
func (s seqState) describe() string {
	return "seq" + describeList(s.states)
}

// Parallel runs states concurrently on the same input and yields the list
// of their outputs in declaration order (§2.1: workflows form graphs
// because functions can be multi-threaded).
func Parallel(states ...State) State { return parState{states} }

type parState struct{ states []State }

func (s parState) run(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
	outs := make([]beldi.Value, len(s.states))
	branches := make([]func(*beldi.Env) error, len(s.states))
	for i, st := range s.states {
		i, st := i, st
		branches[i] = func(sub *beldi.Env) error {
			out, err := st.run(sub, input)
			if err != nil {
				return err
			}
			outs[i] = out
			return nil
		}
	}
	if err := e.Parallel(branches...); err != nil {
		return beldi.Null, err
	}
	return beldi.List(outs...), nil
}
func (s parState) describe() string { return "par" + describeList(s.states) }

// Choice dispatches on a string field of the input map. A missing input
// field or an unmatched branch value fails the workflow with a descriptive
// error unless a default branch was declared with WithDefault (the "" key
// in branches also names the default, for compatibility with older
// definitions).
func Choice(field string, branches map[string]State) *ChoiceState {
	return &ChoiceState{field: field, branches: branches}
}

// ChoiceState is a Choice node; WithDefault adds the fallback branch.
type ChoiceState struct {
	field    string
	branches map[string]State
	def      State
}

// WithDefault sets the branch taken when the input's field value matches
// no declared branch, and returns the state for chaining.
func (s *ChoiceState) WithDefault(st State) *ChoiceState {
	s.def = st
	return s
}

func (s *ChoiceState) run(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
	v, present := input.MapGet(s.field)
	if !present {
		return beldi.Null, fmt.Errorf("stepfn: choice(%s): input has no field %q (input kind %s)",
			s.field, s.field, input.Kind())
	}
	st, ok := s.branches[v.Str()]
	if !ok && s.def != nil {
		st, ok = s.def, true
	}
	if !ok {
		st, ok = s.branches[""]
	}
	if !ok {
		branches := make([]string, 0, len(s.branches))
		for k := range s.branches {
			branches = append(branches, k)
		}
		sort.Strings(branches)
		return beldi.Null, fmt.Errorf("stepfn: choice(%s): no branch for value %q (branches: %s) and no default",
			s.field, v.Str(), strings.Join(branches, ", "))
	}
	return st.run(e, input)
}
func (s *ChoiceState) describe() string { return fmt.Sprintf("choice(%s)", s.field) }

// WaitAll fans the state's input out to the named SSFs as durable
// asynchronous invocations and awaits all of their results, yielding the
// list of outputs in declaration order — declarative fan-out/fan-in on
// durable promises (Env.AsyncInvokePromise / Env.AwaitAll). Unlike
// Parallel, whose branches run synchronous invocations inside this
// workflow's instance, WaitAll's callees are independent registered
// intents: they survive the driver crashing mid-await, and the replayed
// driver re-awaits the identical posted results.
func WaitAll(functions ...string) State { return waitAllState{fns: functions} }

type waitAllState struct{ fns []string }

func (s waitAllState) run(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
	ps := make([]*beldi.Promise, len(s.fns))
	for i, fn := range s.fns {
		p, err := e.AsyncInvokePromise(fn, input)
		if err != nil {
			return beldi.Null, fmt.Errorf("stepfn: waitAll(%s): %w", fn, err)
		}
		ps[i] = p
	}
	outs, err := e.AwaitAll(ps...)
	if err != nil {
		return beldi.Null, err
	}
	return beldi.List(outs...), nil
}
func (s waitAllState) describe() string {
	return "waitAll[" + strings.Join(s.fns, " ∥ ") + "]"
}

// Txn runs the wrapped subgraph transactionally: the paper's begin/end SSF
// pair around a workflow region (§6.2, Fig 21). An abort anywhere inside —
// wait-die or application ErrTxnAborted — rolls the whole subgraph back;
// the state then yields the Aborted marker value instead of failing the
// workflow, mirroring how the paper's 'end' SSF converts the region's
// outcome into a signal for downstream states.
func Txn(body State) State { return txnState{body} }

// Aborted is the output a Txn state yields when its subgraph aborted.
var Aborted = beldi.Str("stepfn:aborted")

type txnState struct{ body State }

func (s txnState) run(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
	var out beldi.Value
	err := e.Transaction(func() error {
		var err error
		out, err = s.body.run(e, input)
		return err
	})
	if errors.Is(err, beldi.ErrTxnAborted) {
		return Aborted, nil
	}
	if err != nil {
		return beldi.Null, err
	}
	return out, nil
}
func (s txnState) describe() string { return "txn[" + s.body.describe() + "]" }

// Pass transforms the flowing value with a pure function — for input
// shaping between tasks. fn MUST be deterministic and effect-free; all
// effects belong in Tasks.
func Pass(name string, fn func(beldi.Value) beldi.Value) State {
	return passState{name: name, fn: fn}
}

type passState struct {
	name string
	fn   func(beldi.Value) beldi.Value
}

func (s passState) run(_ *beldi.Env, input beldi.Value) (beldi.Value, error) {
	return s.fn(input), nil
}
func (s passState) describe() string { return "pass(" + s.name + ")" }

// Register compiles the workflow into a driver SSF named name on the
// deployment. The returned runtime is the driver's (collectors included).
func Register(d *beldi.Deployment, name string, w State) *beldi.Runtime {
	return d.Function(name, func(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
		return w.run(e, input)
	})
}

// Describe renders a workflow definition as a one-line expression, for
// documentation and change review.
func Describe(w State) string { return w.describe() }

func describeList(states []State) string {
	s := "["
	for i, st := range states {
		if i > 0 {
			s += " → "
		}
		s += st.describe()
	}
	return s + "]"
}
