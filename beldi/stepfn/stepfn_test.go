package stepfn_test

import (
	"strings"
	"testing"
	"time"

	"repro/beldi"
	"repro/beldi/stepfn"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/uuid"
)

func newDeployment(t *testing.T, faults platform.FaultPlan) *beldi.Deployment {
	t.Helper()
	store := dynamo.NewStore()
	plat := platform.New(platform.Options{
		ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}, Faults: faults,
	})
	return beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{T: 50 * time.Millisecond, ICMinAge: time.Millisecond, LockRetryMax: 200},
	})
}

func appendFn(letter string) beldi.Body {
	return func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		return beldi.Str(in.Str() + letter), nil
	}
}

func TestSequenceFeedsOutputsForward(t *testing.T) {
	d := newDeployment(t, nil)
	d.Function("a", appendFn("a"))
	d.Function("b", appendFn("b"))
	d.Function("c", appendFn("c"))
	stepfn.Register(d, "wf", stepfn.Sequence(
		stepfn.Task("a"), stepfn.Task("b"), stepfn.Task("c"),
	))
	out, err := d.Invoke("wf", beldi.Str("·"))
	if err != nil || out.Str() != "·abc" {
		t.Fatalf("out = %v err = %v", out, err)
	}
}

func TestParallelCollectsInDeclarationOrder(t *testing.T) {
	d := newDeployment(t, nil)
	d.Function("x", appendFn("x"))
	d.Function("y", appendFn("y"))
	stepfn.Register(d, "wf", stepfn.Parallel(stepfn.Task("x"), stepfn.Task("y")))
	out, err := d.Invoke("wf", beldi.Str("·"))
	if err != nil {
		t.Fatal(err)
	}
	l := out.List()
	if len(l) != 2 || l[0].Str() != "·x" || l[1].Str() != "·y" {
		t.Fatalf("out = %v", out)
	}
}

func TestChoiceDispatchAndDefault(t *testing.T) {
	d := newDeployment(t, nil)
	d.Function("hi", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		return beldi.Str("hello"), nil
	})
	d.Function("bye", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		return beldi.Str("goodbye"), nil
	})
	stepfn.Register(d, "wf", stepfn.Choice("op", map[string]stepfn.State{
		"greet": stepfn.Task("hi"),
		"":      stepfn.Task("bye"),
	}))
	out, _ := d.Invoke("wf", beldi.Map(map[string]beldi.Value{"op": beldi.Str("greet")}))
	if out.Str() != "hello" {
		t.Errorf("greet → %v", out)
	}
	out, _ = d.Invoke("wf", beldi.Map(map[string]beldi.Value{"op": beldi.Str("other")}))
	if out.Str() != "goodbye" {
		t.Errorf("default → %v", out)
	}
}

func TestChoiceWithoutDefaultErrors(t *testing.T) {
	d := newDeployment(t, nil)
	d.Function("hi", appendFn("h"))
	stepfn.Register(d, "wf", stepfn.Choice("op", map[string]stepfn.State{
		"greet": stepfn.Task("hi"),
	}))
	if _, err := d.Invoke("wf", beldi.Map(map[string]beldi.Value{"op": beldi.Str("x")})); err == nil {
		t.Error("missing branch accepted")
	}
}

func TestChoiceWithDefaultBranch(t *testing.T) {
	d := newDeployment(t, nil)
	d.Function("hi", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		return beldi.Str("hello"), nil
	})
	d.Function("fallback", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		return beldi.Str("caught"), nil
	})
	stepfn.Register(d, "wf", stepfn.Choice("op", map[string]stepfn.State{
		"greet": stepfn.Task("hi"),
	}).WithDefault(stepfn.Task("fallback")))
	out, err := d.Invoke("wf", beldi.Map(map[string]beldi.Value{"op": beldi.Str("greet")}))
	if err != nil || out.Str() != "hello" {
		t.Errorf("greet → %v (err %v)", out, err)
	}
	out, err = d.Invoke("wf", beldi.Map(map[string]beldi.Value{"op": beldi.Str("unmatched")}))
	if err != nil || out.Str() != "caught" {
		t.Errorf("default → %v (err %v)", out, err)
	}
}

func TestChoiceMissingFieldIsDescriptiveError(t *testing.T) {
	d := newDeployment(t, nil)
	d.Function("hi", appendFn("h"))
	stepfn.Register(d, "wf", stepfn.Choice("op", map[string]stepfn.State{
		"greet": stepfn.Task("hi"),
	}).WithDefault(stepfn.Task("hi")))
	// The input has no "op" field at all: even with a default, dispatching
	// on a missing field is a workflow bug and must be named as such.
	_, err := d.Invoke("wf", beldi.Map(map[string]beldi.Value{"other": beldi.Str("x")}))
	if err == nil {
		t.Fatal("missing field accepted")
	}
	if !strings.Contains(err.Error(), `no field "op"`) {
		t.Errorf("error does not name the missing field: %v", err)
	}
}

func TestChoiceMissingBranchNamesCandidates(t *testing.T) {
	d := newDeployment(t, nil)
	d.Function("hi", appendFn("h"))
	stepfn.Register(d, "wf", stepfn.Choice("op", map[string]stepfn.State{
		"greet": stepfn.Task("hi"),
		"part":  stepfn.Task("hi"),
	}))
	_, err := d.Invoke("wf", beldi.Map(map[string]beldi.Value{"op": beldi.Str("x")}))
	if err == nil {
		t.Fatal("missing branch accepted")
	}
	for _, want := range []string{`value "x"`, "greet", "part", "no default"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestWaitAllFansOutAndCollectsInOrder(t *testing.T) {
	d := newDeployment(t, nil)
	d.Function("x", appendFn("x"))
	d.Function("y", appendFn("y"))
	d.Function("z", appendFn("z"))
	stepfn.Register(d, "wf", stepfn.WaitAll("x", "y", "z"))
	out, err := d.Invoke("wf", beldi.Str("·"))
	if err != nil {
		t.Fatal(err)
	}
	l := out.List()
	if len(l) != 3 || l[0].Str() != "·x" || l[1].Str() != "·y" || l[2].Str() != "·z" {
		t.Fatalf("out = %v", out)
	}
	if err := d.FsckAll(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllDescribe(t *testing.T) {
	got := stepfn.Describe(stepfn.WaitAll("a", "b"))
	if !strings.Contains(got, "waitAll[") || !strings.Contains(got, "a") || !strings.Contains(got, "b") {
		t.Errorf("describe = %q", got)
	}
}

func TestPassShapesInput(t *testing.T) {
	d := newDeployment(t, nil)
	d.Function("echo", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) { return in, nil })
	stepfn.Register(d, "wf", stepfn.Sequence(
		stepfn.Pass("wrap", func(v beldi.Value) beldi.Value {
			return beldi.Map(map[string]beldi.Value{"wrapped": v})
		}),
		stepfn.Task("echo"),
	))
	out, err := d.Invoke("wf", beldi.Str("x"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := out.MapGet("wrapped"); !ok || v.Str() != "x" {
		t.Errorf("out = %v", out)
	}
}

// reserveBody decrements "inv"/"capacity", aborting when sold out; the
// "seed" input initializes the capacity.
func reserveBody(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
	if in.Str() == "seed" {
		return beldi.Null, e.Write("inv", "capacity", beldi.Int(2))
	}
	cap, err := e.Read("inv", "capacity")
	if err != nil {
		return beldi.Null, err
	}
	if cap.Int() < 1 {
		return beldi.Null, beldi.ErrTxnAborted
	}
	if err := e.Write("inv", "capacity", beldi.Int(cap.Int()-1)); err != nil {
		return beldi.Null, err
	}
	return beldi.Str("ok"), nil
}

func TestTxnStateCommitsAcrossSSFs(t *testing.T) {
	d2 := newDeployment(t, nil)
	d2.Function("hotel", reserveBody, "inv")
	d2.Function("flight", reserveBody, "inv")
	stepfn.Register(d2, "trip", stepfn.Txn(stepfn.Sequence(
		stepfn.Task("hotel"), stepfn.Task("flight"),
	)))
	for _, fn := range []string{"hotel", "flight"} {
		if _, err := d2.Invoke(fn, beldi.Str("seed")); err != nil {
			t.Fatal(err)
		}
	}

	// Two bookings succeed; the third aborts atomically.
	for i := 0; i < 2; i++ {
		out, err := d2.Invoke("trip", beldi.Null)
		if err != nil || out.Str() != "ok" {
			t.Fatalf("trip %d: %v %v", i, out, err)
		}
	}
	out, err := d2.Invoke("trip", beldi.Null)
	if err != nil || !out.Equal(stepfn.Aborted) {
		t.Fatalf("sold-out trip: %v %v", out, err)
	}
	for _, fn := range []string{"hotel", "flight"} {
		v, err := beldi.PeekState(d2.Runtime(fn), "inv", "capacity")
		if err != nil || v.Int() != 0 {
			t.Errorf("%s capacity = %v (err %v)", fn, v, err)
		}
	}
}

func TestWorkflowSurvivesCrashSweep(t *testing.T) {
	// Crash the compiled driver at several op boundaries; the collector
	// must complete the workflow with all three tasks exactly-once.
	for _, n := range []int{2, 4, 7, 10} {
		plan := &platform.CrashNthOp{Function: "wf", N: n}
		d := newDeployment(t, plan)
		counterBody := func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
			v, err := e.Read("c", "n")
			if err != nil {
				return beldi.Null, err
			}
			return beldi.Null, e.Write("c", "n", beldi.Int(v.Int()+1))
		}
		d.Function("s1", counterBody, "c")
		d.Function("s2", counterBody, "c")
		stepfn.Register(d, "wf", stepfn.Sequence(stepfn.Task("s1"), stepfn.Task("s2")))
		ev := beldi.Map(map[string]beldi.Value{
			"Kind":       beldi.Str("call"),
			"InstanceId": beldi.Str("wf-req"),
			"Input":      beldi.Null,
		})
		d.Runtime("wf") // ensure registered
		plat := platformOf(t, d)
		plat.Invoke("wf", ev) //nolint:errcheck // crash expected
		deadline := time.Now().Add(5 * time.Second)
		for {
			time.Sleep(2 * time.Millisecond)
			if err := d.RunAllCollectors(); err != nil {
				t.Fatal(err)
			}
			v1, _ := beldi.PeekState(d.Runtime("s1"), "c", "n")
			v2, _ := beldi.PeekState(d.Runtime("s2"), "c", "n")
			if v1.Int() == 1 && v2.Int() == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("n=%d: s1=%v s2=%v", n, v1, v2)
			}
		}
		v1, _ := beldi.PeekState(d.Runtime("s1"), "c", "n")
		v2, _ := beldi.PeekState(d.Runtime("s2"), "c", "n")
		if v1.Int() != 1 || v2.Int() != 1 {
			t.Errorf("n=%d: duplicated effects s1=%v s2=%v", n, v1, v2)
		}
	}
}

func TestDescribe(t *testing.T) {
	w := stepfn.Sequence(
		stepfn.Task("a"),
		stepfn.Txn(stepfn.Parallel(stepfn.Task("b"), stepfn.Task("c"))),
	)
	got := stepfn.Describe(w)
	for _, want := range []string{"task(a)", "txn[", "par[", "task(b)", "task(c)"} {
		if !strings.Contains(got, want) {
			t.Errorf("describe %q missing %q", got, want)
		}
	}
}

// platformOf digs the platform out of a deployment via a registered
// runtime (test helper).
func platformOf(t *testing.T, d *beldi.Deployment) *platform.Platform {
	t.Helper()
	rt := d.Runtime("wf")
	if rt == nil {
		t.Fatal("wf not registered")
	}
	return rt.Platform()
}
