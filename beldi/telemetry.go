package beldi

// This file is the public face of the unified telemetry layer
// (internal/telemetry): one hub per deployment that collects (1) crash-
// surviving causal traces — every step, call, lock wait, transaction phase
// and queue hop an intent performs, with replayed operations tagged, so a
// workflow that crashed and was restarted by the collector reads as ONE
// trace with its pre-crash attempt marked — and (2) a metrics registry that
// unifies every subsystem's counters (core, store, WAL, queue, platform,
// cluster) under hierarchical names next to latency histograms on the hot
// paths (step commit, lock acquire, txn commit, enqueue→receive, WAL
// fsync). Serve it over HTTP with telemetry.Serve / telemetry.Handler, or
// snapshot it in-process; see OPERATIONS.md "Observability".

import (
	"repro/internal/dynamo"
	"repro/internal/pipeline"
	"repro/internal/remote"
	"repro/internal/telemetry"
	"repro/internal/walstore"
)

// Telemetry is a deployment's observability hub: a span tracer plus a
// metrics registry. Create one with NewTelemetry, pass it in
// DeploymentOptions.Telemetry, and every runtime the deployment builds
// reports into it. A nil hub disables telemetry with near-zero overhead.
type Telemetry = telemetry.Hub

// NewTelemetry creates an empty hub with the default span capacity.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Telemetry returns the deployment's hub, nil when telemetry is off.
func (d *Deployment) Telemetry() *Telemetry { return d.opts.Telemetry }

// attachInfra registers the deployment's shared infrastructure — store,
// platform, and (for WAL-backed stores) fsync latency — on the hub.
// Idempotent: Register replaces same-prefix sources, so multiple
// deployments over one hub keep the latest wiring.
func (d *Deployment) attachInfra() {
	h := d.opts.Telemetry
	if h == nil {
		return
	}
	inner := d.opts.Store
	if p, ok := inner.(*pipeline.Store); ok {
		h.Registry.Register("pipeline", func() any { return p.Snapshot() })
		p.SetHistograms(
			h.Registry.Histogram("pipeline.depth"),
			h.Registry.Histogram("pipeline.batch"),
			h.Registry.Histogram("pipeline.lag"),
		)
		// The substrate registrations below describe the durable base, not
		// the zero-latency shadow.
		inner = p.Base()
	}
	if s, ok := inner.(interface{ Metrics() *dynamo.Metrics }); ok {
		m := s.Metrics()
		h.Registry.Register("store", func() any { return m.Snapshot() })
	}
	if rc, ok := inner.(*remote.Client); ok {
		stats := rc.Stats()
		h.Registry.Register("remote.rpc", func() any { return stats.Snapshot() })
		rc.SetRPCHistogram(h.Registry.Histogram("remote.rpc_latency"))
	}
	if ws, ok := inner.(*walstore.Store); ok {
		st := ws.WAL()
		h.Registry.Register("wal", func() any { return st.Snapshot() })
		ws.SetFsyncHistogram(h.Registry.Histogram("wal.fsync"))
	}
	if d.opts.Platform != nil {
		m := d.opts.Platform.Metrics()
		h.Registry.Register("platform", func() any { return m.Snapshot() })
	}
}
