package beldi

import (
	"context"
	"fmt"
)

// The typed facade: generic, compile-time-checked handles layered strictly
// on top of the dynamic Env API. Every typed operation is a plain dynamic
// operation plus the ToValue/FromValue codec, nothing else — no extra
// logged steps, no different storage layout — so typed and dynamic code
// interoperate freely on the same tables and the equivalence property test
// (typed_test.go) can pin them to identical observable state.

// TableOf is a typed handle on one of an SSF's logical tables: Get, Put
// and CondPut of T values. Construct with NewTable; handles are cheap
// values, safe to declare once at package level and share.
type TableOf[T any] struct {
	name string
}

// NewTable returns a typed handle on logical table name (the same name
// passed to Deployment.Function's table list).
func NewTable[T any](name string) TableOf[T] { return TableOf[T]{name: name} }

// Name returns the logical table name.
func (t TableOf[T]) Name() string { return t.name }

// Get reads key with Env.Read semantics (logged, exactly-once, locked
// inside transactions) and decodes it into a T. Never-written keys decode
// as the zero T.
func (t TableOf[T]) Get(e *Env, key string) (T, error) {
	var out T
	v, err := e.Read(t.name, key)
	if err != nil {
		return out, err
	}
	err = FromValue(v, &out)
	return out, err
}

// Put writes v at key with Env.Write semantics.
func (t TableOf[T]) Put(e *Env, key string, v T) error {
	val, err := ToValue(v)
	if err != nil {
		return err
	}
	return e.Write(t.name, key, val)
}

// CondPut writes v at key only if cond holds against the item's current
// state, with Env.CondWrite semantics; it reports whether the write took
// effect.
func (t TableOf[T]) CondPut(e *Env, key string, v T, cond Cond) (bool, error) {
	val, err := ToValue(v)
	if err != nil {
		return false, err
	}
	return e.CondWrite(t.name, key, val, cond)
}

// Func is a typed handle on a registered SSF: invocations with In/Out
// types checked at compile time, encoded through the same envelopes as the
// dynamic API. Construct with RegisterFunc, or with FuncOf for a function
// registered elsewhere.
type Func[In, Out any] struct {
	name string
	d    *Deployment
}

// RegisterFunc registers body as an SSF named name on d, with typed input
// and output: the dynamic Value input is decoded into an In before body
// runs, and body's Out return is encoded back. Codec failures fail the
// invocation (and, like any instance error, leave the intent to the
// collector). The handle's typed invocation methods target d.
func RegisterFunc[In, Out any](d *Deployment, name string, body func(*Env, In) (Out, error), tables ...string) Func[In, Out] {
	d.Function(name, func(e *Env, input Value) (Value, error) {
		var in In
		if err := FromValue(input, &in); err != nil {
			return Null, fmt.Errorf("beldi: %s: decoding input: %w", name, err)
		}
		out, err := body(e, in)
		if err != nil {
			return Null, err
		}
		v, verr := ToValue(out)
		if verr != nil {
			return Null, fmt.Errorf("beldi: %s: encoding output: %w", name, verr)
		}
		return v, nil
	}, tables...)
	return Func[In, Out]{name: name, d: d}
}

// FuncOf returns a typed handle on an already-registered function — the
// caller asserts the In/Out shape. Use RegisterFunc where possible; FuncOf
// exists for composing against functions registered by other packages.
func FuncOf[In, Out any](d *Deployment, name string) Func[In, Out] {
	return Func[In, Out]{name: name, d: d}
}

// Name returns the function's registered name.
func (f Func[In, Out]) Name() string { return f.name }

// Invoke calls the function synchronously from outside any workflow, like
// Deployment.Invoke, with typed input and output.
func (f Func[In, Out]) Invoke(in In) (Out, error) {
	return f.InvokeCtx(context.Background(), in)
}

// InvokeCtx is Invoke bounded by a context, with Deployment.InvokeCtx's
// cancellation semantics.
func (f Func[In, Out]) InvokeCtx(ctx context.Context, in In) (Out, error) {
	var out Out
	v, err := ToValue(in)
	if err != nil {
		return out, err
	}
	res, err := f.d.InvokeCtx(ctx, f.name, v)
	if err != nil {
		return out, err
	}
	err = FromValue(res, &out)
	return out, err
}

// Call invokes the function from inside a workflow with Env.SyncInvoke
// semantics (exactly-once, transaction context propagated).
func (f Func[In, Out]) Call(e *Env, in In) (Out, error) {
	var out Out
	v, err := ToValue(in)
	if err != nil {
		return out, err
	}
	res, err := e.SyncInvoke(f.name, v)
	if err != nil {
		return out, err
	}
	err = FromValue(res, &out)
	return out, err
}

// Async starts the function asynchronously with Env.AsyncInvokePromise
// semantics and returns a typed promise on its result.
func (f Func[In, Out]) Async(e *Env, in In) (*PromiseOf[Out], error) {
	v, err := ToValue(in)
	if err != nil {
		return nil, err
	}
	p, err := e.AsyncInvokePromise(f.name, v)
	if err != nil {
		return nil, err
	}
	return &PromiseOf[Out]{p: p}, nil
}

// PromiseOf is a Promise whose result decodes to T.
type PromiseOf[T any] struct {
	p *Promise
}

// Promise returns the underlying dynamic promise.
func (p *PromiseOf[T]) Promise() *Promise { return p.p }

// Await resolves the promise with Promise.Await semantics (a logged step;
// identical results across crash and replay) and decodes the result.
func (p *PromiseOf[T]) Await(e *Env) (T, error) {
	var out T
	v, err := p.p.Await(e)
	if err != nil {
		return out, err
	}
	err = FromValue(v, &out)
	return out, err
}

// AwaitAllOf resolves typed promises in order and returns their decoded
// values — AwaitAll for a homogeneous typed fan-out.
func AwaitAllOf[T any](e *Env, ps ...*PromiseOf[T]) ([]T, error) {
	outs := make([]T, len(ps))
	for i, p := range ps {
		v, err := p.Await(e)
		if err != nil {
			return nil, err
		}
		outs[i] = v
	}
	return outs, nil
}
