package beldi_test

import (
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/uuid"
)

// Data sovereignty (§2.2): SSFs developed independently keep their state in
// their own databases; composition happens only through invocation. These
// tests deploy each SSF onto its OWN store — the strict federation the
// paper's architecture targets — and verify the workflow still composes.

func TestPerFunctionStoresCompose(t *testing.T) {
	plat := platform.New(platform.Options{ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}})
	cfg := beldi.Config{T: 50 * time.Millisecond, ICMinAge: time.Millisecond}

	// Two organizations: "orders" and "payments", fully separate databases.
	ordersStore := dynamo.NewStore()
	paymentsStore := dynamo.NewStore()
	orders := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: ordersStore, Platform: plat, Config: cfg,
	})
	payments := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: paymentsStore, Platform: plat, Config: cfg,
	})

	payments.Function("charge", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		total, err := e.Read("ledger", "total")
		if err != nil {
			return beldi.Null, err
		}
		next := beldi.Int(total.Int() + in.Int())
		if err := e.Write("ledger", "total", next); err != nil {
			return beldi.Null, err
		}
		return next, nil
	}, "ledger")

	orders.Function("order", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		charged, err := e.SyncInvoke("charge", beldi.Int(42))
		if err != nil {
			return beldi.Null, err
		}
		return charged, e.Write("book", "last", charged)
	}, "book")

	out, err := orders.Invoke("order", beldi.Null)
	if err != nil || out.Int() != 42 {
		t.Fatalf("order: %v %v", out, err)
	}

	// Sovereignty: the orders database holds no payments tables and vice
	// versa — state crossed only through the invocation result.
	for _, name := range ordersStore.TableNames() {
		if has := len(name) >= 6 && name[:6] == "charge"; has {
			t.Errorf("payments table %q leaked into the orders store", name)
		}
	}
	for _, name := range paymentsStore.TableNames() {
		if has := len(name) >= 5 && name[:5] == "order"; has {
			t.Errorf("orders table %q leaked into the payments store", name)
		}
	}

	// Each side audits cleanly in isolation.
	if err := orders.FsckAll(); err != nil {
		t.Errorf("orders fsck: %v", err)
	}
	if err := payments.FsckAll(); err != nil {
		t.Errorf("payments fsck: %v", err)
	}
	v, _ := beldi.PeekState(payments.Runtime("charge"), "ledger", "total")
	if v.Int() != 42 {
		t.Errorf("ledger = %v", v)
	}
}

func TestPerFunctionCollectorsRunIndependently(t *testing.T) {
	// Each organization's collectors see only its own intents: recovery of
	// one side never touches (or needs) the other side's database.
	plat := platform.New(platform.Options{ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"}})
	cfg := beldi.Config{T: 10 * time.Millisecond, ICMinAge: time.Millisecond}
	aStore, bStore := dynamo.NewStore(), dynamo.NewStore()
	a := beldi.NewDeployment(beldi.DeploymentOptions{Store: aStore, Platform: plat, Config: cfg})
	b := beldi.NewDeployment(beldi.DeploymentOptions{Store: bStore, Platform: plat, Config: cfg})
	fail := true
	a.Function("flakyA", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		if fail {
			fail = false
			return beldi.Null, platformErr()
		}
		return beldi.Str("ok"), e.Write("t", "k", beldi.Int(1))
	}, "t")
	b.Function("steadyB", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		return beldi.Str("ok"), e.Write("t", "k", beldi.Int(2))
	}, "t")

	a.Invoke("flakyA", beldi.Null) //nolint:errcheck // first attempt fails
	if out, err := b.Invoke("steadyB", beldi.Null); err != nil || out.Str() != "ok" {
		t.Fatalf("b: %v %v", out, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(2 * time.Millisecond)
		if err := a.RunAllCollectors(); err != nil {
			t.Fatal(err)
		}
		if v, _ := beldi.PeekState(a.Runtime("flakyA"), "t", "k"); v.Int() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("a never recovered")
		}
	}
	// b's database was never involved in a's recovery.
	if v, _ := beldi.PeekState(b.Runtime("steadyB"), "t", "k"); v.Int() != 2 {
		t.Errorf("b state disturbed: %v", v)
	}
}

func platformErr() error { return errTransient }

var errTransient = &transientErr{}

type transientErr struct{}

func (*transientErr) Error() string { return "transient failure" }
