// Package beldi is the public API of this Beldi reproduction: a library and
// runtime for writing fault-tolerant, transactional stateful serverless
// functions (SSFs) and composing them into workflows, after "Fault-tolerant
// and Transactional Stateful Serverless Workflows" (OSDI 2020).
//
// An SSF is an ordinary function of type Body. Writing it against Env's API
// (the paper's Figure 2: Read, Write, CondWrite, SyncInvoke, AsyncInvoke,
// Lock, Unlock, Transaction) is all it takes: the runtime wraps every
// invocation with intent logging and replay so that, even if instances
// crash at any point and are re-executed arbitrarily many times by the
// intent collector, the observable effect equals exactly one clean
// execution. Transactions span SSF boundaries with opacity isolation.
//
// A minimal SSF:
//
//	func Counter(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
//		v, err := e.Read("state", "counter")
//		if err != nil {
//			return beldi.Null, err
//		}
//		next := beldi.Int(v.Int() + 1)
//		if err := e.Write("state", "counter", next); err != nil {
//			return beldi.Null, err
//		}
//		return next, nil
//	}
//
// Deployment pairs each SSF with its own database tables (data
// sovereignty), an intent collector, and a garbage collector:
//
//	d := beldi.NewDeployment(beldi.DeploymentOptions{Store: store, Platform: plat})
//	d.Function("counter", Counter, "state")
//	d.StartCollectors()
//	out, err := d.Invoke("counter", beldi.Null)
//
// Three further surfaces layer on this dynamic core (see ARCHITECTURE.md,
// "API layers"):
//
//   - Context-first invocation: InvokeCtx/InvokeAppCtx (and Func.InvokeCtx)
//     carry a context.Context into Env.Context and down call chains; lock
//     retries, wait-die backoffs and promise awaits observe it, and a
//     canceled call fails with ErrCanceled while the collectors finish the
//     workflow exactly once.
//   - A typed facade: NewTable[T] / RegisterFunc[In, Out] / PromiseOf[T]
//     give compile-time-checked tables, functions and promises over the
//     structural ToValue/FromValue codec; typed and dynamic code
//     interoperate on the same state.
//   - Durable promises: Env.AsyncInvokePromise returns a Promise backed by
//     a durable mailbox cell; Promise.Await / Env.AwaitAll are logged
//     steps, so fan-out/fan-in survives crash and replay on either side.
//
// The same Body runs unchanged in three modes — ModeBeldi (the paper's
// system), ModeCrossTable (the §7.3 comparator that logs to a separate
// table with cross-table transactions), and ModeBaseline (raw operations,
// no guarantees) — which is how the evaluation figures compare them.
package beldi

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dynamo"
	"repro/internal/pipeline"
	"repro/internal/platform"
	"repro/internal/storage"
	"repro/internal/uuid"
)

// Re-exported core types. Aliases keep the public surface thin while the
// implementation lives in internal packages.
type (
	// Value is the dynamic value type flowing through inputs, outputs and
	// storage.
	Value = dynamo.Value
	// Env is the per-instance execution context exposing Beldi's API.
	Env = core.Env
	// Body is an SSF's application logic.
	Body = core.Body
	// Mode selects Beldi / cross-table / baseline machinery.
	Mode = core.Mode
	// Config tunes protocol parameters (row capacity N, lifetime bound T,
	// collector intervals).
	Config = core.Config
	// Runtime is one SSF's runtime (advanced use; Deployment manages these).
	Runtime = core.Runtime
	// TxnMode is a transaction phase.
	TxnMode = core.TxnMode
	// GCStats reports one garbage-collection pass.
	GCStats = core.GCStats
	// Promise is a durable handle on an asynchronously invoked SSF's result
	// (Env.AsyncInvokePromise); resolve it with Promise.Await or
	// Env.AwaitAll. Fan-out/fan-in built on promises survives crash and
	// replay on both sides with exactly-once semantics.
	Promise = core.Promise
	// Backend is the pluggable storage seam every deployment runs on: the
	// in-memory dynamo store or any durable implementation (walstore). See
	// internal/storage.
	Backend = storage.Backend
)

// Modes.
const (
	ModeBeldi      = core.ModeBeldi
	ModeCrossTable = core.ModeCrossTable
	ModeBaseline   = core.ModeBaseline
)

// Change-event payload keys: the Map entries a change handler registered
// with Deployment.OnTableChange receives as input.
const (
	ChangeEvTable    = core.ChangeEvTable
	ChangeEvKey      = core.ChangeEvKey
	ChangeEvValue    = core.ChangeEvValue
	ChangeEvFn       = core.ChangeEvFn
	ChangeEvInstance = core.ChangeEvInstance
)

// Errors.
var (
	// ErrTxnAborted reports a wait-die death or application abort; see
	// core.ErrTxnAborted.
	ErrTxnAborted = core.ErrTxnAborted
	// ErrLockUnavailable reports an exhausted lock retry budget.
	ErrLockUnavailable = core.ErrLockUnavailable
	// ErrAwaitTimeout reports a Promise.Await that exhausted its poll budget
	// before the result was posted; the intent collector retries the
	// awaiting instance later.
	ErrAwaitTimeout = core.ErrAwaitTimeout
	// ErrCanceled reports an invocation killed because its context ended
	// (InvokeCtx with a canceled context or an expired deadline). The
	// workflow's intent stays pending and is finished by the collectors:
	// cancellation never weakens exactly-once.
	ErrCanceled = platform.ErrCanceled
	// ErrUnknownFunction reports an Invoke of a function name never
	// registered on this deployment.
	ErrUnknownFunction = errors.New("beldi: unknown function")
)

// AwaitAll resolves promises in order and returns their values in the same
// order — the package-level spelling of Env.AwaitAll for fan-in code that
// reads better as a function.
func AwaitAll(e *Env, ps ...*Promise) ([]Value, error) { return e.AwaitAll(ps...) }

// Value constructors, re-exported for ergonomic application code.
var (
	// Null is the NULL value (also what never-written keys read as).
	Null = dynamo.Null
)

// Str builds a string value.
func Str(s string) Value { return dynamo.S(s) }

// Int builds an integer-valued number.
func Int(i int64) Value { return dynamo.NInt(i) }

// Num builds a number value.
func Num(f float64) Value { return dynamo.N(f) }

// BoolVal builds a boolean value.
func BoolVal(b bool) Value { return dynamo.Bool(b) }

// Bytes builds a binary value.
func Bytes(b []byte) Value { return dynamo.Bytes(b) }

// List builds a list value.
func List(vs ...Value) Value { return dynamo.L(vs...) }

// Map builds a map value.
func Map(m map[string]Value) Value { return dynamo.M(m) }

// Cond is a condition for CondWrite, evaluated against the item's current
// state; build with ValueEq and friends.
type Cond = dynamo.Cond

// ValueEq holds when the item's current value equals v.
func ValueEq(v Value) Cond { return dynamo.Eq(dynamo.A("Value"), v) }

// ValueLt holds when the item's current value orders before v.
func ValueLt(v Value) Cond { return dynamo.Lt(dynamo.A("Value"), v) }

// ValueGt holds when the item's current value orders after v.
func ValueGt(v Value) Cond { return dynamo.Gt(dynamo.A("Value"), v) }

// ValueGe holds when the item's current value orders at or after v.
func ValueGe(v Value) Cond { return dynamo.Ge(dynamo.A("Value"), v) }

// ValueLe holds when the item's current value orders at or before v.
func ValueLe(v Value) Cond { return dynamo.Le(dynamo.A("Value"), v) }

// ValueAbsent holds when the key has never been written (or was written
// Null).
func ValueAbsent() Cond {
	return dynamo.Or(dynamo.NotExists(dynamo.A("Value")), dynamo.Eq(dynamo.A("Value"), dynamo.Null))
}

// And combines conditions conjunctively.
func And(cs ...Cond) Cond { return dynamo.And(cs...) }

// Or combines conditions disjunctively.
func Or(cs ...Cond) Cond { return dynamo.Or(cs...) }

// Not negates a condition.
func Not(c Cond) Cond { return dynamo.Not(c) }

// DeploymentOptions configure NewDeployment.
type DeploymentOptions struct {
	// Store backs every function's tables — any Backend implementation (the
	// in-memory dynamo store, the durable WAL-backed walstore, …). Required.
	// Use one store per SSF for strict data sovereignty, or share one
	// (tables are namespaced per function) as teams sharing infrastructure
	// would (§3).
	Store Backend
	// Platform hosts the functions. Required.
	Platform *platform.Platform
	// Mode selects the machinery; ModeBeldi by default.
	Mode Mode
	// Config tunes protocol parameters for every function.
	Config Config
	// Clock defaults to the wall clock.
	Clock clock.Clock
	// IDs defaults to random UUIDs.
	IDs uuid.Source
	// Telemetry, when set, collects crash-surviving traces and unified
	// metrics from every function the deployment registers, plus the shared
	// store, WAL, queue, and platform. Nil disables telemetry (near-zero
	// overhead). See NewTelemetry.
	Telemetry *Telemetry
	// Speculation, when non-nil, wraps Store in the commit-pipelining
	// overlay (internal/pipeline): every function executes speculatively
	// against a read-your-own-writes shadow while a background committer
	// group-commits batches of step writes, and externally visible effects
	// (workflow entry replies above all) are fenced behind the durability
	// watermark. The zero Options value gives the package defaults; Depth 1
	// degenerates to today's synchronous behavior. Default off — nil keeps
	// every existing semantic and test untouched. Single-writer only: do
	// not share the wrapped store with another process or deployment that
	// writes it (cluster workers keep it off). See ARCHITECTURE.md
	// "Speculation & commit pipelining".
	Speculation *SpeculationOptions
}

// SpeculationOptions tune the commit-pipelining overlay; see
// pipeline.Options for the fields (Depth, Batch, Linger).
type SpeculationOptions = pipeline.Options

// Deployment wires SSFs to their runtimes: the app-developer view of
// Beldi's architecture (Figure 1).
type Deployment struct {
	opts     DeploymentOptions
	runtimes map[string]*core.Runtime
	durable  *DurableAsync
	pipe     *pipeline.Store
}

// NewDeployment creates an empty deployment.
func NewDeployment(opts DeploymentOptions) *Deployment {
	d := &Deployment{opts: opts, runtimes: make(map[string]*core.Runtime)}
	if opts.Speculation != nil {
		// Wrap before anything touches the store: runtimes, the durable
		// async broker, and telemetry all see the overlay, so every step
		// write speculates and every read is read-your-own-writes.
		d.pipe = pipeline.MustNew(opts.Store, *opts.Speculation)
		d.opts.Store = d.pipe
	}
	d.attachInfra()
	return d
}

// Pipeline returns the speculation overlay when DeploymentOptions.
// Speculation enabled it, nil otherwise — for stats, fencing, and tests
// that audit durable state through Pipeline().Base().
func (d *Deployment) Pipeline() *pipeline.Store { return d.pipe }

// Function registers an SSF with its own runtime and the logical data
// tables it owns. It panics on misconfiguration (duplicate name, bad
// options) since registration is setup code.
func (d *Deployment) Function(name string, body Body, tables ...string) *core.Runtime {
	if _, ok := d.runtimes[name]; ok {
		panic("beldi: duplicate function " + name)
	}
	rt := core.MustNewRuntime(core.RuntimeOptions{
		Function:  name,
		Store:     d.opts.Store,
		Platform:  d.opts.Platform,
		Mode:      d.opts.Mode,
		Config:    d.opts.Config,
		Clock:     d.opts.Clock,
		IDs:       d.opts.IDs,
		Telemetry: d.opts.Telemetry,
	})
	for _, t := range tables {
		rt.MustCreateDataTable(t)
	}
	core.Register(rt, body)
	if h := d.opts.Telemetry; h != nil {
		stats := rt.Stats()
		h.Registry.Register("core."+name, func() any { return stats.Snapshot() })
	}
	d.runtimes[name] = rt
	return rt
}

// Runtime returns a registered function's runtime, or nil.
func (d *Deployment) Runtime(name string) *core.Runtime { return d.runtimes[name] }

// OnTableChange subscribes handler to committed writes on fn's logical
// table — a table-change (CDC) event source. After each Env.Write or taken
// Env.CondWrite by fn outside a transaction, handler is invoked
// asynchronously with a change-event Map (keys core.ChangeEvTable,
// ChangeEvKey, ChangeEvValue, ChangeEvFn, ChangeEvInstance), exactly once
// per committed change: the fire is a logged step of the writing instance,
// deduplicated through the invoke log across crashes and re-executions.
// Both functions must already be registered. Call during setup, before
// workflows run, and identically across restarts. ModeBaseline and
// transactional writes emit nothing (see internal/core/cdc.go).
func (d *Deployment) OnTableChange(fn, table, handler string) error {
	if err := d.known(fn); err != nil {
		return err
	}
	if err := d.known(handler); err != nil {
		return err
	}
	d.runtimes[fn].RegisterChangeHandler(table, handler)
	return nil
}

// Invoke calls a function synchronously from outside any workflow (an
// external client request). Unregistered names fail with
// ErrUnknownFunction.
func (d *Deployment) Invoke(name string, input Value) (Value, error) {
	if err := d.known(name); err != nil {
		return Null, err
	}
	return d.opts.Platform.Invoke(name, core.ClientEnvelope(input))
}

// InvokeCtx is Invoke bounded by a context: admission waits respect
// cancellation, the workflow's lock retries, wait-die backoffs and promise
// awaits observe ctx (Env.Context), and the instance is killed at its next
// operation boundary once ctx ends — failing the call with ErrCanceled
// while the intent collector finishes (or already finished) the workflow
// exactly once.
func (d *Deployment) InvokeCtx(ctx context.Context, name string, input Value) (Value, error) {
	if err := d.known(name); err != nil {
		return Null, err
	}
	return d.opts.Platform.InvokeCtx(ctx, name, core.ClientEnvelope(input))
}

// InvokeApp is Invoke on behalf of a named application (§2.2 SSF
// reusability): the app name rides the workflow, and SSFs that registered
// app-scoped tables ("<app>:<table>" in Function's table list) keep that
// application's state separate; unscoped tables remain shared across
// applications.
func (d *Deployment) InvokeApp(name, app string, input Value) (Value, error) {
	if err := d.known(name); err != nil {
		return Null, err
	}
	return d.opts.Platform.Invoke(name, core.ClientEnvelopeForApp(app, input))
}

// InvokeAppCtx is InvokeApp bounded by a context, with InvokeCtx's
// cancellation semantics.
func (d *Deployment) InvokeAppCtx(ctx context.Context, name, app string, input Value) (Value, error) {
	if err := d.known(name); err != nil {
		return Null, err
	}
	return d.opts.Platform.InvokeCtx(ctx, name, core.ClientEnvelopeForApp(app, input))
}

// known verifies name was registered on this deployment.
func (d *Deployment) known(name string) error {
	if _, ok := d.runtimes[name]; !ok {
		return fmt.Errorf("%w: %q is not registered on this deployment", ErrUnknownFunction, name)
	}
	return nil
}

// StartCollectors starts every function's intent- and garbage-collector
// timers (per the configured intervals).
func (d *Deployment) StartCollectors() {
	for _, rt := range d.runtimes {
		rt.StartCollectors()
	}
}

// Stop halts all collector timers and, when durable async is enabled, the
// event-source mappers. With speculation on it then fences and closes the
// pipeline, so everything speculated before Stop is durable when Stop
// returns.
func (d *Deployment) Stop() {
	if d.durable != nil {
		d.durable.Stop()
	}
	for _, rt := range d.runtimes {
		rt.Stop()
	}
	if d.pipe != nil {
		// The sticky flush error, if any, already failed the workflows that
		// depended on it through their fences; Close here only drains.
		_ = d.pipe.Close()
	}
}

// PeekState reads an SSF's current committed value for key directly from
// its storage — an inspection aid for examples, tests and operational
// tooling (application reads should go through an SSF, preserving data
// sovereignty).
func PeekState(rt *Runtime, table, key string) (Value, error) {
	return rt.PeekState(table, key)
}

// Fsck audits an SSF's durable state against the protocol invariants
// (well-formed DAAL chains, log-size accounting, no locks held by completed
// intents, no leaked log rows). Run it at quiescence — after chaos tests,
// or as an operational consistency check. A nil error means every check
// passed.
func Fsck(rt *Runtime) error { return core.Fsck(rt) }

// FsckAll audits every function in the deployment.
func (d *Deployment) FsckAll() error {
	for _, rt := range d.runtimes {
		if err := core.Fsck(rt); err != nil {
			return err
		}
	}
	return nil
}

// RunAllCollectors performs one intent-collection and one garbage-
// collection pass on every function — deterministic collection for tests
// and benchmarks.
func (d *Deployment) RunAllCollectors() error {
	for _, rt := range d.runtimes {
		if rt.Mode() == ModeBaseline {
			continue
		}
		if _, err := rt.RunIntentCollector(); err != nil {
			return err
		}
		if _, err := rt.RunGarbageCollector(); err != nil {
			return err
		}
	}
	return nil
}

// WaitForDuration is a tiny convenience used by examples to let timers fire.
func WaitForDuration(d time.Duration) { time.Sleep(d) }
