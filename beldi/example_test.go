package beldi_test

import (
	"errors"
	"fmt"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/uuid"
)

// Example shows the minimal Beldi program: one stateful serverless function
// with exactly-once read-modify-write state.
func Example() {
	store := dynamo.NewStore()
	plat := platform.New(platform.Options{IDs: &uuid.Seq{Prefix: "req"}})
	d := beldi.NewDeployment(beldi.DeploymentOptions{Store: store, Platform: plat})

	d.Function("counter", func(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
		v, err := e.Read("state", "hits")
		if err != nil {
			return beldi.Null, err
		}
		next := beldi.Int(v.Int() + 1)
		if err := e.Write("state", "hits", next); err != nil {
			return beldi.Null, err
		}
		return next, nil
	}, "state")

	for i := 0; i < 3; i++ {
		out, err := d.Invoke("counter", beldi.Null)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(out.Int())
	}
	// Output:
	// 1
	// 2
	// 3
}

// ExampleEnv_Transaction shows a transaction spanning two SSFs: both
// inventory decrements commit together or not at all.
func ExampleEnv_Transaction() {
	store := dynamo.NewStore()
	plat := platform.New(platform.Options{IDs: &uuid.Seq{Prefix: "req"}})
	d := beldi.NewDeployment(beldi.DeploymentOptions{Store: store, Platform: plat})

	reserve := func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		if in.Str() == "seed" {
			return beldi.Null, e.Write("inv", "capacity", beldi.Int(1))
		}
		cap, err := e.Read("inv", "capacity")
		if err != nil {
			return beldi.Null, err
		}
		if cap.Int() < 1 {
			return beldi.Null, beldi.ErrTxnAborted
		}
		return beldi.Str("ok"), e.Write("inv", "capacity", beldi.Int(cap.Int()-1))
	}
	d.Function("hotel", reserve, "inv")
	d.Function("flight", reserve, "inv")
	d.Function("trip", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		err := e.Transaction(func() error {
			if _, err := e.SyncInvoke("hotel", beldi.Null); err != nil {
				return err
			}
			_, err := e.SyncInvoke("flight", beldi.Null)
			return err
		})
		if errors.Is(err, beldi.ErrTxnAborted) {
			return beldi.Str("aborted"), nil
		}
		return beldi.Str("booked"), err
	})

	for _, fn := range []string{"hotel", "flight"} {
		if _, err := d.Invoke(fn, beldi.Str("seed")); err != nil {
			fmt.Println("seed error:", err)
			return
		}
	}
	out, _ := d.Invoke("trip", beldi.Null)
	fmt.Println(out.Str())
	out, _ = d.Invoke("trip", beldi.Null) // sold out: aborts atomically
	fmt.Println(out.Str())
	hotelLeft, _ := beldi.PeekState(d.Runtime("hotel"), "inv", "capacity")
	flightLeft, _ := beldi.PeekState(d.Runtime("flight"), "inv", "capacity")
	fmt.Println(hotelLeft.Int(), flightLeft.Int())
	// Output:
	// booked
	// aborted
	// 0 0
}

// ExampleEnv_CondWrite shows a conditional write: claim a slot only if it
// has never been taken.
func ExampleEnv_CondWrite() {
	store := dynamo.NewStore()
	plat := platform.New(platform.Options{IDs: &uuid.Seq{Prefix: "req"}})
	d := beldi.NewDeployment(beldi.DeploymentOptions{Store: store, Platform: plat})

	d.Function("claim", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		ok, err := e.CondWrite("state", "owner", in, beldi.ValueAbsent())
		if err != nil {
			return beldi.Null, err
		}
		return beldi.BoolVal(ok), nil
	}, "state")

	first, _ := d.Invoke("claim", beldi.Str("alice"))
	second, _ := d.Invoke("claim", beldi.Str("bob"))
	owner, _ := beldi.PeekState(d.Runtime("claim"), "state", "owner")
	fmt.Println(first.BoolVal(), second.BoolVal(), owner.Str())
	// Output:
	// true false alice
}
