package beldi

// This file is the public face of the multi-worker distributed runtime
// (internal/cluster): OpenCluster declares a worker pool over one shared
// Backend, and JoinCluster adds workers to it — each with its own platform,
// its own registration of the application's SSFs, a lease it heartbeats,
// and a slice of the intent space whose recovery it owns. Workers steal a
// dead peer's partitions and finish its in-flight workflows exactly once;
// epoch fencing makes a revoked worker's late claims land nowhere. See
// OPERATIONS.md for running and tuning clustered deployments.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/platform"
	"repro/internal/uuid"
)

// ClusterOptions configure OpenCluster.
type ClusterOptions struct {
	// Name identifies the cluster: workers joining the same name on the
	// same Store form one pool. Default "main".
	Name string
	// Store is the shared backend every worker coordinates over — in-memory
	// for simulation, the WAL-backed store for durability. Required.
	Store Backend
	// Mode selects the machinery for every worker's functions; ModeBeldi by
	// default.
	Mode Mode
	// Config tunes protocol parameters for every worker's functions.
	Config Config
	// Partitions is the number of ownership partitions the intent space is
	// divided into; it is fixed at cluster creation (rejoining pools adopt
	// the persisted count). 0 means cluster.DefaultPartitions.
	Partitions int
	// LeaseTTL is how long a silent worker keeps its lease before peers
	// declare it dead and steal its work. 0 means cluster.DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Platform shapes each worker's in-process platform (concurrency limit,
	// start latencies, seed). The IDs and Faults fields are per-worker and
	// left untouched here.
	Platform platform.Options
	// DurableAsync, when non-nil, wires every worker's AsyncInvoke through
	// durable per-function invocation queues, with each queue drained by
	// whichever worker owns the function's partition.
	DurableAsync *DurableAsyncOptions
	// Telemetry, when set, is shared by every worker's deployment: one hub
	// collects the whole pool's traces (an intent's spans stitch across
	// workers because spans are keyed by intent id, not by worker), and each
	// worker's cluster-protocol counters register under
	// "cluster.<worker-id>". Per-function counters keep the latest worker's
	// wiring; give workers separate hubs to keep them apart.
	Telemetry *Telemetry
}

// Cluster is a handle on a worker pool's shared configuration. It holds no
// goroutines and no lease of its own; workers do.
type Cluster struct {
	opts ClusterOptions
}

// OpenCluster validates the pool's options and returns the handle workers
// join through. The shared tables are created lazily by the first worker.
func OpenCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("beldi: OpenCluster: Store is required")
	}
	if opts.Name == "" {
		opts.Name = "main"
	}
	return &Cluster{opts: opts}, nil
}

// MustOpenCluster is OpenCluster, panicking on error; for setup code.
func MustOpenCluster(opts ClusterOptions) *Cluster {
	c, err := OpenCluster(opts)
	if err != nil {
		panic(err)
	}
	return c
}

// RegisterApp installs an application on a joining worker's deployment:
// every worker of a pool must register the same function set (the same code
// deployed to every node), which is what lets any worker resume any
// workflow.
type RegisterApp func(d *Deployment)

// ClusterWorker is one member of the pool: a full Deployment (its own
// platform and function registry over the shared store) plus the cluster
// worker that leases, detects, steals, collects, and polls for it.
type ClusterWorker struct {
	c    *Cluster
	d    *Deployment
	w    *cluster.Worker
	plat *platform.Platform
}

// JoinCluster adds a worker to the pool: it builds the worker's deployment
// over the shared store (adopting the tables earlier workers created), runs
// register to install the application, acquires the worker's lease, and
// scopes the deployment's collectors and queue pollers to the partitions
// the worker owns. Pass id "" to auto-generate one. Call Start to launch
// the background loops (heartbeat, failure detection, recovery), or drive
// the Worker's *Once methods deterministically.
func (c *Cluster) JoinCluster(id string, register RegisterApp) (*ClusterWorker, error) {
	return c.JoinClusterWith(id, register, WorkerOptions{})
}

// WorkerOptions customize one worker joining a pool — the per-worker knobs a
// deterministic harness (internal/sim) injects: a virtual clock, a
// sequential id source, a fault-wrapped view of the shared store, and
// platform overrides. The zero value keeps every pool default.
type WorkerOptions struct {
	// Clock drives the worker's deployment (protocol timestamps, durable
	// queue visibility) and its cluster lease machinery. Nil means the wall
	// clock. Distinct workers may carry distinct (skewed) clocks.
	Clock clock.Clock
	// IDs mints the worker's instance, queue, and worker ids. Nil means
	// random UUIDs.
	IDs uuid.Source
	// Store, when non-nil, replaces the pool's shared Store for this
	// worker's deployment and cluster machinery. It must address the same
	// underlying tables — the intended use is a fault- or delay-injecting
	// wrapper around the pool's Store, not a different database.
	Store Backend
	// Platform, when non-nil, replaces the pool-wide platform options for
	// this worker (per-worker seeds, fault plans, dispatch hooks).
	Platform *platform.Options
}

// JoinClusterWith is JoinCluster with per-worker overrides; see
// WorkerOptions.
func (c *Cluster) JoinClusterWith(id string, register RegisterApp, wo WorkerOptions) (*ClusterWorker, error) {
	popts := c.opts.Platform
	if wo.Platform != nil {
		popts = *wo.Platform
	}
	if popts.IDs == nil {
		popts.IDs = wo.IDs
	}
	store := c.opts.Store
	if wo.Store != nil {
		store = wo.Store
	}
	plat := platform.New(popts)
	d := NewDeployment(DeploymentOptions{
		Store:     store,
		Platform:  plat,
		Mode:      c.opts.Mode,
		Config:    c.opts.Config,
		Clock:     wo.Clock,
		IDs:       wo.IDs,
		Telemetry: c.opts.Telemetry,
	})
	register(d)
	w, err := cluster.Join(cluster.Options{
		Cluster:    c.opts.Name,
		ID:         id,
		Store:      store,
		LeaseTTL:   c.opts.LeaseTTL,
		Partitions: c.opts.Partitions,
		Clock:      wo.Clock,
		IDs:        wo.IDs,
	})
	if err != nil {
		return nil, err
	}
	cw := &ClusterWorker{c: c, d: d, w: w, plat: plat}
	if h := c.opts.Telemetry; h != nil {
		stats := w.Stats()
		h.Registry.Register("cluster."+w.ID(), func() any { return stats.Snapshot() })
	}
	for _, name := range d.Functions() {
		rt := d.Runtime(name)
		if rt.Mode() == ModeBaseline {
			continue
		}
		w.Attach(rt)
	}
	if c.opts.DurableAsync != nil {
		da := d.EnableDurableAsync(*c.opts.DurableAsync)
		for _, name := range d.Functions() {
			if m := da.Mapper(name); m != nil {
				w.AttachMapper(name, m)
			}
		}
	}
	return cw, nil
}

// JoinCluster is the package-level spelling of Cluster.JoinCluster for call
// sites that read better as a function.
func JoinCluster(c *Cluster, id string, register RegisterApp) (*ClusterWorker, error) {
	return c.JoinCluster(id, register)
}

// Deployment returns the worker's deployment — the surface workflows are
// invoked through. Requests may enter at any live worker; recovery of
// whatever they start is governed by partition ownership, not by the entry
// point.
func (cw *ClusterWorker) Deployment() *Deployment { return cw.d }

// Worker returns the underlying cluster worker (leases, partitions,
// detection, stats) for deterministic driving and inspection.
func (cw *ClusterWorker) Worker() *cluster.Worker { return cw.w }

// Platform returns the worker's in-process platform.
func (cw *ClusterWorker) Platform() *platform.Platform { return cw.plat }

// Invoke calls a function synchronously through this worker.
func (cw *ClusterWorker) Invoke(name string, input Value) (Value, error) {
	return cw.d.Invoke(name, input)
}

// Start launches the worker's background loops: lease heartbeats, failure
// detection with immediate recovery collection, partition rebalancing,
// scoped intent collection, garbage collection, and owned-queue polling.
func (cw *ClusterWorker) Start() { cw.w.Start() }

// Stop halts the worker's loops without releasing its lease — the
// crash-shaped stop (peers will eventually declare it dead). Use Leave for
// a graceful exit.
func (cw *ClusterWorker) Stop() {
	cw.w.Stop()
	cw.d.Stop()
}

// Leave exits the pool gracefully: partitions released for immediate
// rebalancing, lease marked dead, loops stopped.
func (cw *ClusterWorker) Leave() error {
	err := cw.w.Leave()
	cw.d.Stop()
	return err
}

// Kill simulates the worker's machine dying: every in-flight instance on
// its platform is killed at its next operation boundary, the loops stop,
// and the lease is left to expire — the scenario the pool's failure
// detector and work stealing exist for. Chaos tests and the cluster demo
// use it; production workers just die.
func (cw *ClusterWorker) Kill() {
	cw.plat.SetFaults(killAllPlan{})
	cw.w.Stop()
	cw.d.Stop()
}

// killAllPlan crashes every instance at its next crash point.
type killAllPlan struct{}

// ShouldCrash implements platform.FaultPlan.
func (killAllPlan) ShouldCrash(string, string, int) bool { return true }

// Functions lists the deployment's registered function names in sorted
// order.
func (d *Deployment) Functions() []string {
	out := make([]string, 0, len(d.runtimes))
	for name := range d.runtimes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
