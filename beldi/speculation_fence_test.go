package beldi_test

import (
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/queue"
	"repro/internal/uuid"
	"repro/internal/walstore"
)

// Watermark fencing at every effect site. The speculation overlay
// (DeploymentOptions.Speculation) lets a workflow run ahead of durability;
// the contract that makes this safe is that no externally visible effect —
// the entry reply, a mailbox post, a cross-SSF async send, a transaction
// commit, a queue ack — outruns the durability watermark. These tests pin
// that contract deterministically: each one opens a "generation 1"
// deployment whose overlay runs in ManualFlush mode (nothing becomes
// durable except through an explicit fence or FlushStep — the sharpest
// possible kill window), drives a workflow into the crack between the
// effect and its durability with platform.CrashOnce, kills the worker with
// Pipeline().DropAndClose() (the crash model: the speculation tail is
// lost, never a torn interleaving of it), and then audits the base through
// a plain generation-2 deployment: the effect must be absent after
// recovery, and a rerun — client retry, collector restart, or queue
// redelivery, whichever owns that effect site — must land it exactly once.
// Both storage backends run every test; CI additionally runs this file
// under -race.

// specBases enumerates the base backends the fencing suite runs over.
func specBases(t *testing.T) map[string]func(t *testing.T) beldi.Backend {
	t.Helper()
	return map[string]func(t *testing.T) beldi.Backend{
		"memory": func(t *testing.T) beldi.Backend { return dynamo.NewStore() },
		"wal": func(t *testing.T) beldi.Backend {
			st, err := walstore.Open(t.TempDir(), walstore.Options{})
			if err != nil {
				t.Fatalf("walstore: %v", err)
			}
			t.Cleanup(func() { _ = st.Close() })
			return st
		},
	}
}

// specGen opens one process generation over base: a platform with its own
// request-id space and a deployment. With spec set the deployment
// speculates through a ManualFlush overlay; dispatch, when non-nil,
// intercepts the platform's async handoffs (so a test can hold a callee's
// run in its hand and drop it with the dead worker). T is large enough
// that the garbage collector never reaps mid-test; ICMinAge is short so
// collectors restart pending intents promptly.
func specGen(base beldi.Backend, prefix string, spec bool, dispatch func(func())) (*platform.Platform, *beldi.Deployment) {
	plat := platform.New(platform.Options{
		IDs:           &uuid.Seq{Prefix: prefix},
		AsyncDispatch: dispatch,
	})
	opts := beldi.DeploymentOptions{
		Store: base, Platform: plat,
		Config: beldi.Config{T: 5 * time.Second, ICMinAge: time.Millisecond},
	}
	if spec {
		opts.Speculation = &beldi.SpeculationOptions{ManualFlush: true}
	}
	return plat, beldi.NewDeployment(opts)
}

// peekInt reads fn's durable state through d, treating absent as 0.
func peekInt(t *testing.T, d *beldi.Deployment, fn, table, key string) int64 {
	t.Helper()
	v, err := beldi.PeekState(d.Runtime(fn), table, key)
	if err != nil {
		t.Fatalf("peek %s/%s: %v", table, key, err)
	}
	if v.IsNull() {
		return 0
	}
	return v.Int()
}

// collectUntil drives d's collectors until cond holds.
func collectUntil(t *testing.T, d *beldi.Deployment, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("collectors never reached: %s", what)
		}
		time.Sleep(2 * time.Millisecond)
		d.RunAllCollectors() //nolint:errcheck // next round retries
	}
}

// settle runs a few extra collector passes: any duplicate execution they
// could provoke must show up before the exactly-once asserts below.
func settle(d *beldi.Deployment) {
	for i := 0; i < 3; i++ {
		time.Sleep(2 * time.Millisecond)
		d.RunAllCollectors() //nolint:errcheck // settling only
	}
}

func incBody(table, key string) beldi.Body {
	return func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		v, err := e.Read(table, key)
		if err != nil {
			return beldi.Null, err
		}
		next := beldi.Int(v.Int() + 1)
		if err := e.Write(table, key, next); err != nil {
			return beldi.Null, err
		}
		return next, nil
	}
}

// TestSpeculationFenceEntryReply pins the reply effect site: a successful
// invoke must not reply before its steps are durable (the fence), and a
// request that dies before the fence must leave nothing behind — the
// client got an error, not a reply, so absence IS exactly-once.
func TestSpeculationFenceEntryReply(t *testing.T) {
	for name, open := range specBases(t) {
		t.Run(name, func(t *testing.T) {
			base := open(t)
			plat1, d1 := specGen(base, "g1", true, nil)
			d1.Function("counter", incBody("state", "n"), "state")

			if out, err := d1.Invoke("counter", beldi.Null); err != nil || out.Int() != 1 {
				t.Fatalf("invoke: %v %v", out, err)
			}
			st := d1.Pipeline().Snapshot()
			if st.Fences == 0 || st.FlushedRows == 0 {
				t.Fatalf("entry reply released without a fence flush: %+v", st)
			}
			// Audit durability through a plain deployment over the same
			// base, while generation 1 is still live: the reply we just
			// received implies the write is in the base, not the shadow.
			_, audit := specGen(base, "aud", false, nil)
			audit.Function("counter", incBody("state", "n"), "state")
			if got := peekInt(t, audit, "counter", "state", "n"); got != 1 {
				t.Fatalf("reply released before the write was durable: n = %d", got)
			}

			// A second request crashes after its body but before the
			// reply: everything it speculated sits above the watermark.
			plat1.SetFaults(&platform.CrashOnce{Function: "counter", Label: "body:done"})
			if _, err := d1.Invoke("counter", beldi.Null); err == nil {
				t.Fatal("crashed invoke returned a reply")
			}
			if d1.Pipeline().Lag() == 0 {
				t.Fatal("crashed request left nothing speculative")
			}
			d1.Pipeline().DropAndClose()

			if got := peekInt(t, audit, "counter", "state", "n"); got != 1 {
				t.Fatalf("un-replied increment leaked past the watermark: n = %d", got)
			}
			audit.RunAllCollectors() //nolint:errcheck // nothing durable to collect
			if got := peekInt(t, audit, "counter", "state", "n"); got != 1 {
				t.Fatalf("collector resurrected a dropped request: n = %d", got)
			}

			// The client retries against the recovered generation:
			// exactly one more increment.
			if out, err := audit.Invoke("counter", beldi.Null); err != nil || out.Int() != 2 {
				t.Fatalf("retry: %v %v", out, err)
			}
			if err := audit.FsckAll(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpeculationFlushedPrefixRecoversViaCollector splits one request
// across the watermark: the committer flushes the intent and the state
// write, the worker dies holding the done marker and the reply. The
// generation-2 collector owns the pending intent and must finish it
// exactly once — the flushed write replays instead of re-applying.
func TestSpeculationFlushedPrefixRecoversViaCollector(t *testing.T) {
	for name, open := range specBases(t) {
		t.Run(name, func(t *testing.T) {
			base := open(t)
			plat1, d1 := specGen(base, "g1", true, nil)
			d1.Function("counter", incBody("state", "n"), "state")
			plat1.SetFaults(&platform.CrashOnce{Function: "counter", Label: "body:done"})
			if _, err := d1.Invoke("counter", beldi.Null); err == nil {
				t.Fatal("crashed invoke returned a reply")
			}
			// The committer gets its batch in before the kill: intent,
			// logs, and state write become the durable prefix.
			for {
				more, err := d1.Pipeline().FlushStep()
				if err != nil {
					t.Fatalf("flush: %v", err)
				}
				if !more {
					break
				}
			}
			d1.Pipeline().DropAndClose()

			_, d2 := specGen(base, "g2", false, nil)
			d2.Function("counter", incBody("state", "n"), "state")
			if got := peekInt(t, d2, "counter", "state", "n"); got != 1 {
				t.Fatalf("flushed prefix missing: n = %d", got)
			}
			rt := d2.Runtime("counter")
			restarted := 0
			deadline := time.Now().Add(10 * time.Second)
			for restarted == 0 {
				if time.Now().After(deadline) {
					t.Fatal("collector never restarted the pending intent")
				}
				time.Sleep(2 * time.Millisecond)
				n, err := rt.RunIntentCollector()
				if err == nil {
					restarted += n
				}
			}
			if got := peekInt(t, d2, "counter", "state", "n"); got != 1 {
				t.Fatalf("collector re-applied the flushed write: n = %d", got)
			}
			// The intent is done now: further passes find nothing.
			time.Sleep(2 * time.Millisecond)
			if n, err := rt.RunIntentCollector(); err != nil || n != 0 {
				t.Fatalf("intent still pending after collection: n=%d err=%v", n, err)
			}
			if err := d2.FsckAll(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpeculationDropsUnfencedAsyncSend pins the cross-SSF async send: the
// callee's registered intent and the in-process handoff both die with the
// worker when the caller never reached its fence, and the retried request
// sends exactly once.
func TestSpeculationDropsUnfencedAsyncSend(t *testing.T) {
	front := func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		if err := e.AsyncInvoke("worker", beldi.Null); err != nil {
			return beldi.Null, err
		}
		return beldi.Null, nil
	}
	for name, open := range specBases(t) {
		t.Run(name, func(t *testing.T) {
			base := open(t)
			var held []func()
			plat1, d1 := specGen(base, "g1", true, func(run func()) { held = append(held, run) })
			d1.Function("worker", incBody("count", "n"), "count")
			d1.Function("front", front)

			// Crash after the send (and the done marker) but before the
			// reply: the whole workflow, send included, is speculative.
			plat1.SetFaults(&platform.CrashOnce{Function: "front", Label: "done:marked"})
			if _, err := d1.Invoke("front", beldi.Null); err == nil {
				t.Fatal("crashed invoke returned a reply")
			}
			if len(held) == 0 {
				t.Fatal("async run was never handed to the platform")
			}
			if d1.Pipeline().Lag() == 0 {
				t.Fatal("async send left nothing speculative")
			}
			d1.Pipeline().DropAndClose()
			held = nil // the captured run dies with the worker

			plat2, d2 := specGen(base, "g2", false, nil)
			d2.Function("worker", incBody("count", "n"), "count")
			d2.Function("front", front)

			// Absent: no registered intent survived, so collectors find
			// nothing to finish.
			d2.RunAllCollectors() //nolint:errcheck // nothing durable to collect
			if got := peekInt(t, d2, "worker", "count", "n"); got != 0 {
				t.Fatalf("dropped async send executed anyway: n = %d", got)
			}

			// The retried request sends exactly once.
			if _, err := d2.Invoke("front", beldi.Null); err != nil {
				t.Fatalf("retry: %v", err)
			}
			plat2.Drain()
			collectUntil(t, d2, "worker ran once", func() bool {
				return peekInt(t, d2, "worker", "count", "n") == 1
			})
			settle(d2)
			if got := peekInt(t, d2, "worker", "count", "n"); got != 1 {
				t.Fatalf("worker effect ran %d times, want 1", got)
			}
			if err := d2.FsckAll(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpeculationDropsUnfencedPromisePost pins the mailbox-post effect
// site: the callee posts its result speculatively and dies before the
// batch commits. The post must be absent from the durable mailbox, and the
// callee's collector — its intent WAS fenced durable by the parent's reply
// — must rerun the body and post exactly once.
func TestSpeculationDropsUnfencedPromisePost(t *testing.T) {
	for name, open := range specBases(t) {
		t.Run(name, func(t *testing.T) {
			base := open(t)
			var held []func()
			var pid string
			parent := func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
				p, err := e.AsyncInvokePromise("work", beldi.Null)
				if err != nil {
					return beldi.Null, err
				}
				pid = p.ID()
				return beldi.Str(p.ID()), nil
			}
			plat1, d1 := specGen(base, "g1", true, func(run func()) { held = append(held, run) })
			d1.Function("work", incBody("count", "n"), "count")
			d1.Function("parent", parent, "state")

			// The parent completes: its fence commits the work intent
			// (carrying the reply coordinates) to the base.
			if _, err := d1.Invoke("parent", beldi.Null); err != nil {
				t.Fatalf("parent: %v", err)
			}
			if len(held) != 1 || pid == "" {
				t.Fatalf("captured %d runs, pid %q", len(held), pid)
			}
			// The work body runs and posts its result — speculatively —
			// then the worker dies before any of it is durable.
			plat1.SetFaults(&platform.CrashOnce{Function: "work", Label: "promise:posted"})
			held[0]()
			if d1.Pipeline().Lag() == 0 {
				t.Fatal("speculative post left nothing above the watermark")
			}
			d1.Pipeline().DropAndClose()

			// Absent: the post never reached the durable mailbox cell.
			mb, err := queue.NewMailbox(base, "parent.mailbox", 0)
			if err != nil {
				t.Fatalf("mailbox: %v", err)
			}
			if _, posted, err := mb.Fetch(pid); err != nil || posted {
				t.Fatalf("post outran the watermark: posted=%v err=%v", posted, err)
			}

			_, d2 := specGen(base, "g2", false, nil)
			d2.Function("work", incBody("count", "n"), "count")
			d2.Function("parent", parent, "state")
			collectUntil(t, d2, "work intent finished and posted", func() bool {
				_, posted, err := mb.Fetch(pid)
				return err == nil && posted && peekInt(t, d2, "work", "count", "n") == 1
			})
			settle(d2)
			if got := peekInt(t, d2, "work", "count", "n"); got != 1 {
				t.Fatalf("work effect ran %d times, want 1", got)
			}
			if err := d2.FsckAll(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpeculationDropsUnfencedTxnCommit pins the transaction-commit effect
// site: a transaction that committed speculatively vanishes atomically
// with the dead worker — both writes or neither, no dangling locks — and
// the retried request commits exactly once.
func TestSpeculationDropsUnfencedTxnCommit(t *testing.T) {
	// One function owns the accounts (tables are per-function): input
	// "seed" funds them with plain writes, anything else moves 10 from a
	// to b transactionally.
	pay := func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		if in.Str() == "seed" {
			if err := e.Write("acct", "a", beldi.Int(100)); err != nil {
				return beldi.Null, err
			}
			return beldi.Null, e.Write("acct", "b", beldi.Int(0))
		}
		err := e.Transaction(func() error {
			a, err := e.Read("acct", "a")
			if err != nil {
				return err
			}
			if err := e.Write("acct", "a", beldi.Int(a.Int()-10)); err != nil {
				return err
			}
			b, err := e.Read("acct", "b")
			if err != nil {
				return err
			}
			return e.Write("acct", "b", beldi.Int(b.Int()+10))
		})
		return beldi.Null, err
	}
	for name, open := range specBases(t) {
		t.Run(name, func(t *testing.T) {
			base := open(t)
			plat1, d1 := specGen(base, "g1", true, nil)
			d1.Function("pay", pay, "acct")
			if _, err := d1.Invoke("pay", beldi.Str("seed")); err != nil {
				t.Fatalf("seed: %v", err)
			}

			// The transaction commits — speculatively — and the worker
			// dies before the reply fence.
			plat1.SetFaults(&platform.CrashOnce{Function: "pay", Label: "body:done"})
			if _, err := d1.Invoke("pay", beldi.Null); err == nil {
				t.Fatal("crashed invoke returned a reply")
			}
			if d1.Pipeline().Lag() == 0 {
				t.Fatal("committed transaction left nothing speculative")
			}
			d1.Pipeline().DropAndClose()

			_, d2 := specGen(base, "g2", false, nil)
			d2.Function("pay", pay, "acct")
			a := peekInt(t, d2, "pay", "acct", "a")
			b := peekInt(t, d2, "pay", "acct", "b")
			if a != 100 || b != 0 {
				t.Fatalf("speculative commit leaked (or tore): a=%d b=%d", a, b)
			}
			d2.RunAllCollectors() //nolint:errcheck // nothing durable to collect
			if err := d2.FsckAll(); err != nil {
				t.Fatalf("dropped transaction left debris: %v", err)
			}

			// The retry commits exactly once, atomically.
			if _, err := d2.Invoke("pay", beldi.Null); err != nil {
				t.Fatalf("retry: %v", err)
			}
			settle(d2)
			a = peekInt(t, d2, "pay", "acct", "a")
			b = peekInt(t, d2, "pay", "acct", "b")
			if a != 90 || b != 10 {
				t.Fatalf("retried commit not exactly-once: a=%d b=%d", a, b)
			}
			if err := d2.FsckAll(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpeculationDropsUnfencedQueueAck pins the queue-ack effect site
// under durable async: the enqueued message was fenced durable by the
// caller's reply, but the delivery — the claim, the worker's effect, and
// the ack — ran speculatively and dies with the worker. The message must
// still be visible (immediately: the claim never became durable either),
// and redelivery processes it exactly once.
func TestSpeculationDropsUnfencedQueueAck(t *testing.T) {
	front := func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		if err := e.AsyncInvoke("worker", beldi.Null); err != nil {
			return beldi.Null, err
		}
		return beldi.Null, nil
	}
	for name, open := range specBases(t) {
		t.Run(name, func(t *testing.T) {
			base := open(t)
			_, d1 := specGen(base, "g1", true, nil)
			d1.Function("worker", incBody("count", "n"), "count")
			d1.Function("front", front)
			da1 := d1.EnableDurableAsync(beldi.DurableAsyncOptions{})

			if _, err := d1.Invoke("front", beldi.Null); err != nil {
				t.Fatalf("front: %v", err)
			}
			// Deliver the fenced-durable message; everything the delivery
			// does stays above the watermark.
			if p, f, err := da1.PollAll(); err != nil || p != 1 || f != 0 {
				t.Fatalf("deliver: p=%d f=%d err=%v", p, f, err)
			}
			if d1.Pipeline().Lag() == 0 {
				t.Fatal("delivery left nothing speculative")
			}
			d1.Pipeline().DropAndClose()

			_, d2 := specGen(base, "g2", false, nil)
			d2.Function("worker", incBody("count", "n"), "count")
			d2.Function("front", front)
			da2 := d2.EnableDurableAsync(beldi.DurableAsyncOptions{})
			if got := peekInt(t, d2, "worker", "count", "n"); got != 0 {
				t.Fatalf("dropped delivery executed anyway: n = %d", got)
			}

			// Redelivery processes the message exactly once and drains.
			if p, _, err := da2.PollAll(); err != nil || p != 1 {
				t.Fatalf("redeliver: p=%d err=%v", p, err)
			}
			if got := peekInt(t, d2, "worker", "count", "n"); got != 1 {
				t.Fatalf("redelivered effect n = %d, want 1", got)
			}
			if p, f, err := da2.PollAll(); err != nil || p != 0 || f != 0 {
				t.Fatalf("queue not drained: p=%d f=%d err=%v", p, f, err)
			}
			if depth, err := da2.Depth(); err != nil || depth != 0 {
				t.Fatalf("depth=%d err=%v", depth, err)
			}
			settle(d2)
			if got := peekInt(t, d2, "worker", "count", "n"); got != 1 {
				t.Fatalf("worker effect ran %d times, want 1", got)
			}
			if err := d2.FsckAll(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
