package beldi

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/queue"
)

// This file wires the durable event-queue subsystem (internal/queue and the
// platform's event-source mappers) into a Deployment: one invocation queue
// and one queue→function mapping per SSF, plus the transport that reroutes
// every AsyncInvoke through them. With durable async enabled, an
// asynchronous workflow edge is an intent-table registration *paired with a
// durable message*, so it survives the caller crashing right after
// registration, the platform dropping the in-process handoff, and the
// consumer crashing mid-handler — the redelivery/dedup pairing the paper's
// §4.5 fire-and-forget protocol assumes of its provider.

// DurableAsyncOptions configure EnableDurableAsync.
type DurableAsyncOptions struct {
	// VisibilityTimeout hides an in-flight message until its consumer acks
	// or dies; 0 means queue.DefaultVisibilityTimeout.
	VisibilityTimeout time.Duration
	// MaxReceives is the per-message redelivery budget before dead-
	// lettering; 0 means queue.DefaultMaxReceives, negative disables.
	MaxReceives int
	// BatchSize is how many messages each mapper poll claims; 0 means
	// platform.DefaultBatchSize.
	BatchSize int
	// PollInterval is the mapper's idle poll delay; 0 means
	// platform.DefaultPollInterval.
	PollInterval time.Duration
	// NackOnError requeues failed deliveries immediately instead of waiting
	// out the visibility timeout.
	NackOnError bool
}

// DurableAsync is a deployment's event-queue wiring: the broker, the
// per-function invocation queues, their event-source mappers, and the
// durable timer service.
type DurableAsync struct {
	broker    *queue.Broker
	transport *queue.Transport
	mappers   map[string]*platform.Mapper
	timers    *queue.TimerService
}

// EnableDurableAsync switches every registered function's AsyncInvoke to
// queue-backed delivery and returns the wiring. Call it after all Function
// registrations; then either Start the mappers' background pollers or drive
// delivery deterministically with PollAll/Drain. Functions in ModeBaseline
// keep the raw platform handoff (the baseline measures the provider's own
// semantics).
func (d *Deployment) EnableDurableAsync(opts DurableAsyncOptions) *DurableAsync {
	broker := queue.NewBroker(queue.BrokerOptions{Store: d.opts.Store, Clock: d.opts.Clock, IDs: d.opts.IDs})
	transport := queue.NewTransport(broker, queue.Options{
		VisibilityTimeout: opts.VisibilityTimeout,
		MaxReceives:       opts.MaxReceives,
	})
	broker.SetTelemetry(d.opts.Telemetry)
	timers, err := queue.NewTimerService(broker, queue.TimerOptions{PollInterval: opts.PollInterval})
	if err != nil {
		panic(fmt.Sprintf("beldi: EnableDurableAsync: %v", err))
	}
	da := &DurableAsync{broker: broker, transport: transport, mappers: make(map[string]*platform.Mapper), timers: timers}
	if h := d.opts.Telemetry; h != nil {
		m := timers.Metrics()
		h.Registry.Register("timers", func() any { return m.Snapshot() })
	}
	// Provision in sorted function order: queue creation issues storage
	// operations, and a deterministic setup sequence is what lets a
	// simulation seed replay bit-identically.
	for _, name := range d.Functions() {
		rt := d.runtimes[name]
		if rt.Mode() == ModeBaseline {
			continue
		}
		if err := transport.EnsureQueueFor(name); err != nil {
			panic(fmt.Sprintf("beldi: EnableDurableAsync: %v", err))
		}
		rt.SetAsyncTransport(transport)
		da.mappers[name] = platform.MustNewMapper(broker, d.opts.Platform, platform.EventSourceOptions{
			Queue:        queue.QueueFor(name),
			Function:     name,
			BatchSize:    opts.BatchSize,
			PollInterval: opts.PollInterval,
			NackOnError:  opts.NackOnError,
		})
		if h := d.opts.Telemetry; h != nil {
			m := da.mappers[name].Metrics()
			h.Registry.Register("mapper."+name, func() any { return m.Snapshot() })
		}
	}
	d.durable = da
	return da
}

// DurableAsync returns the deployment's event-queue wiring, or nil when
// EnableDurableAsync has not been called.
func (d *Deployment) DurableAsync() *DurableAsync { return d.durable }

// Broker exposes the underlying queue broker (inspection, direct
// enqueueing, DLQ access).
func (da *DurableAsync) Broker() *queue.Broker { return da.broker }

// Mapper returns the event-source mapping for one function, or nil.
func (da *DurableAsync) Mapper(fn string) *platform.Mapper { return da.mappers[fn] }

// Timers returns the deployment's durable timer service, backed by the same
// store as the invocation queues. Registrations survive crashes and broker
// restarts; fires are exactly-once per occurrence (see queue.TimerService).
func (da *DurableAsync) Timers() *queue.TimerService { return da.timers }

// ScheduleInvoke durably registers a timer that invokes fn with input after
// delay, repeating every period when period > 0 (a cron workflow). The fire
// enqueues a client invocation envelope onto fn's invocation queue with a
// deterministic per-occurrence instance id stamped in, so each occurrence
// runs as exactly one workflow instance no matter how often the queue
// redelivers it. Idempotent per id; cancel with Timers().Cancel(id).
func (da *DurableAsync) ScheduleInvoke(id, fn string, input Value, delay, period time.Duration) error {
	if _, ok := da.mappers[fn]; !ok {
		return fmt.Errorf("beldi: ScheduleInvoke: %q has no durable invocation queue", fn)
	}
	return da.timers.Schedule(queue.TimerSpec{
		ID:       id,
		Queue:    queue.QueueFor(fn),
		Body:     core.ClientEnvelope(input),
		Delay:    delay,
		Period:   period,
		StampKey: core.InstanceKey,
	})
}

// functions lists the mapped function names in sorted order, so every
// all-mappers pass issues its storage operations in a replayable sequence.
func (da *DurableAsync) functions() []string {
	out := make([]string, 0, len(da.mappers))
	for name := range da.mappers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Start launches every mapping's background poll loop and the timer pump.
func (da *DurableAsync) Start() {
	for _, name := range da.functions() {
		da.mappers[name].Start()
	}
	da.timers.Start()
}

// Stop halts every mapping's poll loop and the timer pump.
func (da *DurableAsync) Stop() {
	da.timers.Stop()
	for _, name := range da.functions() {
		da.mappers[name].Stop()
	}
}

// PollAll runs one poll over every mapping in sorted function order,
// returning total messages processed successfully and failed — the
// deterministic drive for tests.
func (da *DurableAsync) PollAll() (processed, failed int, err error) {
	for _, name := range da.functions() {
		p, f, perr := da.mappers[name].PollOnce()
		processed += p
		failed += f
		if perr != nil && err == nil {
			err = perr
		}
	}
	return processed, failed, err
}

// Depth sums live messages (visible and in flight) across all invocation
// queues.
func (da *DurableAsync) Depth() (int, error) {
	total := 0
	for _, q := range da.broker.Queues() {
		n, err := da.broker.Depth(q)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// Drain polls every mapping until all invocation queues are empty — waiting
// out visibility timeouts of crashed consumers, so redelivery and
// dead-lettering run to completion — or until timeout. Returns the number of
// successful deliveries.
func (da *DurableAsync) Drain(timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	delivered := 0
	for {
		p, _, err := da.PollAll()
		delivered += p
		if err != nil {
			return delivered, err
		}
		depth, err := da.Depth()
		if err != nil {
			return delivered, err
		}
		if depth == 0 {
			return delivered, nil
		}
		if time.Now().After(deadline) {
			return delivered, fmt.Errorf("beldi: Drain: %d messages still queued after %v", depth, timeout)
		}
		if p == 0 {
			// Nothing visible: in-flight claims must expire before the
			// redelivery (or dead-lettering) can happen.
			time.Sleep(time.Millisecond)
		}
	}
}
