package beldi_test

import (
	"errors"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/platform"
	"repro/internal/storage/storagetest"
	"repro/internal/uuid"
)

func newDeployment(t *testing.T, mode beldi.Mode) (*beldi.Deployment, *platform.Platform) {
	t.Helper()
	store := storagetest.Open(t)
	plat := platform.New(platform.Options{IDs: &uuid.Seq{Prefix: "req"}})
	d := beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat, Mode: mode,
		Config: beldi.Config{T: 50 * time.Millisecond, ICMinAge: time.Millisecond},
	})
	return d, plat
}

func counter(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
	v, err := e.Read("state", "hits")
	if err != nil {
		return beldi.Null, err
	}
	next := beldi.Int(v.Int() + 1)
	if err := e.Write("state", "hits", next); err != nil {
		return beldi.Null, err
	}
	return next, nil
}

func TestDeploymentLifecycle(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi)
	rt := d.Function("counter", counter, "state")
	if rt == nil || d.Runtime("counter") != rt {
		t.Fatal("runtime not registered")
	}
	for want := int64(1); want <= 3; want++ {
		out, err := d.Invoke("counter", beldi.Null)
		if err != nil || out.Int() != want {
			t.Fatalf("invoke: %v %v", out, err)
		}
	}
	v, err := beldi.PeekState(rt, "state", "hits")
	if err != nil || v.Int() != 3 {
		t.Errorf("PeekState = %v %v", v, err)
	}
	if err := d.RunAllCollectors(); err != nil {
		t.Fatal(err)
	}
	d.StartCollectors()
	d.Stop()
}

func TestDuplicateFunctionPanics(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi)
	d.Function("f", counter, "state")
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate function")
		}
	}()
	d.Function("f", counter)
}

func TestValueHelpers(t *testing.T) {
	if beldi.Str("x").Str() != "x" || beldi.Int(7).Int() != 7 ||
		beldi.Num(2.5).Num() != 2.5 || !beldi.BoolVal(true).BoolVal() {
		t.Error("scalar helpers broken")
	}
	l := beldi.List(beldi.Int(1), beldi.Int(2))
	if len(l.List()) != 2 {
		t.Error("List broken")
	}
	m := beldi.Map(map[string]beldi.Value{"k": beldi.Str("v")})
	if got, ok := m.MapGet("k"); !ok || got.Str() != "v" {
		t.Error("Map broken")
	}
	if !beldi.Null.IsNull() {
		t.Error("Null is not null")
	}
}

func TestCondHelpers(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi)
	d.Function("claim", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		ok, err := e.CondWrite("state", "slot", in, beldi.ValueAbsent())
		if err != nil {
			return beldi.Null, err
		}
		if ok {
			return beldi.Str("claimed"), nil
		}
		// Conditional overwrite with a matching guard.
		ok, err = e.CondWrite("state", "slot", in,
			beldi.And(beldi.Not(beldi.ValueEq(in)), beldi.ValueGe(beldi.Str(""))))
		if err != nil {
			return beldi.Null, err
		}
		return beldi.BoolVal(ok), nil
	}, "state")
	out, err := d.Invoke("claim", beldi.Str("a"))
	if err != nil || out.Str() != "claimed" {
		t.Fatalf("first: %v %v", out, err)
	}
	out, err = d.Invoke("claim", beldi.Str("b"))
	if err != nil || !out.BoolVal() {
		t.Fatalf("second: %v %v", out, err)
	}
}

func TestTransactionThroughFacade(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBeldi)
	d.Function("mv", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		err := e.Transaction(func() error {
			if err := e.Write("state", "a", beldi.Int(1)); err != nil {
				return err
			}
			if in.Str() == "abort" {
				return errors.New("no thanks")
			}
			return e.Write("state", "b", beldi.Int(2))
		})
		if errors.Is(err, beldi.ErrTxnAborted) {
			return beldi.Str("aborted"), nil
		}
		return beldi.Str("committed"), err
	}, "state")
	if out, _ := d.Invoke("mv", beldi.Str("abort")); out.Str() != "aborted" {
		t.Fatalf("abort path: %v", out)
	}
	rt := d.Runtime("mv")
	if v, _ := beldi.PeekState(rt, "state", "a"); !v.IsNull() {
		t.Errorf("aborted write leaked: %v", v)
	}
	if out, _ := d.Invoke("mv", beldi.Null); out.Str() != "committed" {
		t.Fatal("commit path failed")
	}
	if v, _ := beldi.PeekState(rt, "state", "b"); v.Int() != 2 {
		t.Errorf("b = %v", v)
	}
}

func TestBaselineModeThroughFacade(t *testing.T) {
	d, _ := newDeployment(t, beldi.ModeBaseline)
	d.Function("counter", counter, "state")
	out, err := d.Invoke("counter", beldi.Null)
	if err != nil || out.Int() != 1 {
		t.Fatalf("baseline: %v %v", out, err)
	}
	v, err := beldi.PeekState(d.Runtime("counter"), "state", "hits")
	if err != nil || v.Int() != 1 {
		t.Errorf("baseline PeekState = %v %v", v, err)
	}
}
