package beldi_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/storage/storagetest"
)

// registerCounter registers the shared test SSF: each request increments its
// own key — a non-idempotent effect whose final value exposes any lost or
// duplicated execution.
func registerCounter(d *beldi.Deployment) {
	d.Function("counter", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		key := in.Map()["key"].Str()
		v, err := e.Read("state", key)
		if err != nil {
			return beldi.Null, err
		}
		next := beldi.Int(v.Int() + 1)
		if err := e.Write("state", key, next); err != nil {
			return beldi.Null, err
		}
		return next, nil
	}, "state")
}

func TestClusterWorkersShareState(t *testing.T) {
	store := storagetest.Open(t)
	c := beldi.MustOpenCluster(beldi.ClusterOptions{
		Store: store, Partitions: 8,
		Config: beldi.Config{T: 50 * time.Millisecond},
	})
	w1, err := c.JoinCluster("w1", registerCounter)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := beldi.JoinCluster(c, "w2", registerCounter)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Stop()
	defer w2.Stop()

	// The same key, incremented once through each worker: both see one
	// shared state, not two private ones.
	req := beldi.Map(map[string]beldi.Value{"key": beldi.Str("shared")})
	if _, err := w1.Invoke("counter", req); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Invoke("counter", req); err != nil {
		t.Fatal(err)
	}
	v, err := beldi.PeekState(w1.Deployment().Runtime("counter"), "state", "shared")
	if err != nil || v.Int() != 2 {
		t.Fatalf("shared counter = %v (%v), want 2", v, err)
	}

	// Ownership is split, not duplicated.
	if _, _, err := w1.Worker().RebalanceOnce(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w2.Worker().RebalanceOnce(); err != nil {
		t.Fatal(err)
	}
	n1, n2 := len(w1.Worker().OwnedPartitions()), len(w2.Worker().OwnedPartitions())
	if n1+n2 != 8 || n1 == 0 || n2 == 0 {
		t.Fatalf("partition split %d/%d, want all 8 split across both", n1, n2)
	}
	if err := w1.Deployment().FsckAll(); err != nil {
		t.Error(err)
	}
}

// TestClusterKillRecoversExactlyOnce is the end-to-end acceptance scenario:
// background loops running, a worker killed mid-load, survivors detect the
// death, steal its partitions, and finish every workflow it left behind —
// with every counter landing on exactly 1.
func TestClusterKillRecoversExactlyOnce(t *testing.T) {
	store := storagetest.Open(t)
	c := beldi.MustOpenCluster(beldi.ClusterOptions{
		Store:      store,
		Partitions: 8,
		LeaseTTL:   80 * time.Millisecond,
		Config:     beldi.Config{T: 30 * time.Millisecond},
	})
	register := registerCounter
	var workers []*beldi.ClusterWorker
	for i := 0; i < 3; i++ {
		w, err := c.JoinCluster(fmt.Sprintf("w%d", i), register)
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.Stop()
		}
	}()
	// Settle partition ownership across the pool before driving load, so
	// the kill takes real work ownership down with it.
	for round := 0; round < 4; round++ {
		for _, w := range workers {
			if _, _, err := w.Worker().RebalanceOnce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, w := range workers {
		if len(w.Worker().OwnedPartitions()) == 0 {
			t.Fatalf("worker %d owns nothing after settling", i)
		}
		w.Start()
	}

	const requests = 30
	var wg sync.WaitGroup
	errs := make([]error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := workers[i%3]
			req := beldi.Map(map[string]beldi.Value{"key": beldi.Str(fmt.Sprintf("k%03d", i))})
			_, errs[i] = w.Invoke("counter", req)
		}(i)
		if i == requests/2 {
			workers[1].Kill() // mid-load: a third of the traffic dies with it
		}
	}
	wg.Wait()

	// Client-side errors are allowed (the killed worker's callers see the
	// crash); lost or duplicated effects are not. Every key must converge
	// to exactly 1 via the survivors' stolen collection.
	probe := workers[0].Deployment().Runtime("counter")
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
		for i := 0; i < requests; i++ {
			key := fmt.Sprintf("k%03d", i)
			v, err := beldi.PeekState(probe, "state", key)
			if err != nil {
				t.Fatal(err)
			}
			if v.Int() != 1 {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < requests; i++ {
				key := fmt.Sprintf("k%03d", i)
				v, _ := beldi.PeekState(probe, "state", key)
				if v.Int() != 1 {
					t.Errorf("key %s = %d (invoke err: %v)", key, v.Int(), errs[i])
				}
			}
			t.Fatal("recovery did not converge to exactly-once")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The death was detected and work moved.
	steals := workers[0].Worker().Stats().Steals.Load() + workers[2].Worker().Stats().Steals.Load()
	if steals == 0 {
		t.Error("no partitions were stolen from the killed worker")
	}
	crashed := 0
	for _, err := range errs {
		if err != nil {
			crashed++
		}
	}
	t.Logf("kill test: %d/%d client calls failed at the killed worker, %d partitions stolen",
		crashed, requests, steals)
	if err := workers[0].Deployment().FsckAll(); err != nil {
		t.Errorf("fsck after recovery: %v", err)
	}
}

func TestOpenClusterValidation(t *testing.T) {
	if _, err := beldi.OpenCluster(beldi.ClusterOptions{}); err == nil {
		t.Fatal("OpenCluster without a store accepted")
	}
	store := storagetest.Open(t)
	c := beldi.MustOpenCluster(beldi.ClusterOptions{Store: store, Partitions: 4})
	w, err := c.JoinCluster("", registerCounter) // auto-generated id
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	if w.Worker().ID() == "" {
		t.Error("empty auto-generated worker id")
	}
	if _, err := w.Invoke("nope", beldi.Null); !errors.Is(err, beldi.ErrUnknownFunction) {
		t.Errorf("unknown function: %v", err)
	}
}
