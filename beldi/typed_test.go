package beldi_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/beldi"
	"repro/internal/platform"
	"repro/internal/storage/storagetest"
	"repro/internal/uuid"
)

func newTypedTestDeployment(t *testing.T) *beldi.Deployment {
	t.Helper()
	store := storagetest.Open(t)
	plat := platform.New(platform.Options{
		ConcurrencyLimit: 10000, IDs: &uuid.Seq{Prefix: "req"},
	})
	return beldi.NewDeployment(beldi.DeploymentOptions{
		Store: store, Platform: plat,
		Config: beldi.Config{T: 50 * time.Millisecond, ICMinAge: time.Millisecond},
	})
}

// account is the typed shape the property test round-trips; its ToValue
// encoding must be byte-identical to the hand-built dynamic map below.
type account struct {
	Owner   string
	Balance int64
	Flags   []string
	Meta    map[string]int64 `beldi:"M"`
}

func dynAccount(a account) beldi.Value {
	flags := make([]beldi.Value, len(a.Flags))
	for i, f := range a.Flags {
		flags[i] = beldi.Str(f)
	}
	meta := make(map[string]beldi.Value, len(a.Meta))
	for k, v := range a.Meta {
		meta[k] = beldi.Int(v)
	}
	return beldi.Map(map[string]beldi.Value{
		"Owner":   beldi.Str(a.Owner),
		"Balance": beldi.Int(a.Balance),
		"Flags":   beldi.List(flags...),
		"M":       beldi.Map(meta),
	})
}

func TestCodecRoundTrip(t *testing.T) {
	in := account{
		Owner: "ada", Balance: 42,
		Flags: []string{"vip", "beta"},
		Meta:  map[string]int64{"logins": 7},
	}
	v, err := beldi.ToValue(in)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(dynAccount(in)) {
		t.Errorf("encoding diverges from the hand-built dynamic map:\n  typed   %v\n  dynamic %v", v, dynAccount(in))
	}
	var out account
	if err := beldi.FromValue(v, &out); err != nil {
		t.Fatal(err)
	}
	back, err := beldi.ToValue(out)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(v) {
		t.Errorf("round trip not stable: %v vs %v", back, v)
	}
}

// TestTypedDynamicEquivalenceProperty is the acceptance property test: the
// same seeded operation sequence, run once through the typed facade
// (TableOf/RegisterFunc) and once through hand-written dynamic bodies on a
// separate deployment, must produce identical outputs and identical
// observable table state — the typed layer is a codec, not different
// machinery.
func TestTypedDynamicEquivalenceProperty(t *testing.T) {
	type op struct {
		Kind    string // "deposit" | "flag" | "reset"
		Key     string
		Amount  int64
		Flag    string
		MinBal  int64
		HasCond bool
	}

	accounts := beldi.NewTable[account]("state")

	// Typed deployment.
	td := newTypedTestDeployment(t)
	typedFn := beldi.RegisterFunc(td, "acct", func(e *beldi.Env, in op) (account, error) {
		a, err := accounts.Get(e, in.Key)
		if err != nil {
			return account{}, err
		}
		switch in.Kind {
		case "deposit":
			a.Balance += in.Amount
			if a.Meta == nil {
				a.Meta = map[string]int64{}
			}
			a.Meta["ops"]++
			if in.HasCond {
				// Conditional on the stored balance ordering before the new
				// value's — both sides evaluate the same stored map, so
				// outcomes must match.
				ok, err := accounts.CondPut(e, in.Key, a, beldi.ValueAbsent())
				if err != nil {
					return account{}, err
				}
				if !ok {
					return a, nil
				}
				return a, nil
			}
			return a, accounts.Put(e, in.Key, a)
		case "flag":
			a.Flags = append(a.Flags, in.Flag)
			return a, accounts.Put(e, in.Key, a)
		default:
			a = account{Owner: in.Flag, Balance: in.MinBal}
			return a, accounts.Put(e, in.Key, a)
		}
	}, "state")

	// Dynamic deployment: the same logic, hand-written against Value maps.
	dd := newTypedTestDeployment(t)
	dd.Function("acct", func(e *beldi.Env, input beldi.Value) (beldi.Value, error) {
		get := func(m beldi.Value, k string) beldi.Value { v, _ := m.MapGet(k); return v }
		cur, err := e.Read("state", get(input, "Key").Str())
		if err != nil {
			return beldi.Null, err
		}
		// Decode the stored dynamic map into locals (zero defaults on Null).
		owner := get(cur, "Owner").Str()
		balance := get(cur, "Balance").Int()
		flags := append([]beldi.Value(nil), get(cur, "Flags").List()...)
		meta := map[string]beldi.Value{}
		for k, v := range get(cur, "M").Map() {
			meta[k] = v
		}
		enc := func() beldi.Value {
			return beldi.Map(map[string]beldi.Value{
				"Owner":   beldi.Str(owner),
				"Balance": beldi.Int(balance),
				"Flags":   beldi.List(flags...),
				"M":       beldi.Map(meta),
			})
		}
		key := get(input, "Key").Str()
		switch get(input, "Kind").Str() {
		case "deposit":
			balance += get(input, "Amount").Int()
			meta["ops"] = beldi.Int(get(beldi.Map(meta), "ops").Int() + 1)
			out := enc()
			if get(input, "HasCond").BoolVal() {
				if _, err := e.CondWrite("state", key, out, beldi.ValueAbsent()); err != nil {
					return beldi.Null, err
				}
				return out, nil
			}
			return out, e.Write("state", key, out)
		case "flag":
			flags = append(flags, get(input, "Flag"))
			out := enc()
			return out, e.Write("state", key, out)
		default:
			owner = get(input, "Flag").Str()
			balance = get(input, "MinBal").Int()
			flags = nil
			meta = map[string]beldi.Value{}
			out := enc()
			return out, e.Write("state", key, out)
		}
	}, "state")

	rng := rand.New(rand.NewSource(7))
	kinds := []string{"deposit", "flag", "reset"}
	keys := []string{"a", "b", "c", "d"}
	for i := 0; i < 200; i++ {
		o := op{
			Kind:    kinds[rng.Intn(len(kinds))],
			Key:     keys[rng.Intn(len(keys))],
			Amount:  int64(rng.Intn(100)),
			Flag:    fmt.Sprintf("f%d", rng.Intn(5)),
			MinBal:  int64(rng.Intn(10)),
			HasCond: rng.Intn(4) == 0,
		}
		tOut, tErr := typedFn.Invoke(o)
		ov, err := beldi.ToValue(o)
		if err != nil {
			t.Fatal(err)
		}
		dOut, dErr := dd.Invoke("acct", ov)
		if (tErr == nil) != (dErr == nil) {
			t.Fatalf("op %d %+v: typed err %v, dynamic err %v", i, o, tErr, dErr)
		}
		tv, err := beldi.ToValue(tOut)
		if err != nil {
			t.Fatal(err)
		}
		if !tv.Equal(dOut) {
			t.Fatalf("op %d %+v: outputs diverge\n  typed   %v\n  dynamic %v", i, o, tv, dOut)
		}
	}

	// Identical observable state, key by key.
	for _, k := range keys {
		tv, err := beldi.PeekState(td.Runtime("acct"), "state", k)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := beldi.PeekState(dd.Runtime("acct"), "state", k)
		if err != nil {
			t.Fatal(err)
		}
		if !tv.Equal(dv) {
			t.Errorf("state %q diverges:\n  typed   %v\n  dynamic %v", k, tv, dv)
		}
	}
	if err := td.FsckAll(); err != nil {
		t.Errorf("typed fsck: %v", err)
	}
	if err := dd.FsckAll(); err != nil {
		t.Errorf("dynamic fsck: %v", err)
	}
}

func TestTypedAsyncPromise(t *testing.T) {
	d := newTypedTestDeployment(t)
	square := beldi.RegisterFunc(d, "square", func(e *beldi.Env, n int64) (int64, error) {
		return n * n, nil
	})
	d.Function("driver", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		ps := make([]*beldi.PromiseOf[int64], 4)
		for i := range ps {
			p, err := square.Async(e, int64(i+1))
			if err != nil {
				return beldi.Null, err
			}
			ps[i] = p
		}
		outs, err := beldi.AwaitAllOf(e, ps...)
		if err != nil {
			return beldi.Null, err
		}
		sum := int64(0)
		for _, v := range outs {
			sum += v
		}
		return beldi.Int(sum), nil
	})
	out, err := d.Invoke("driver", beldi.Null)
	if err != nil {
		t.Fatal(err)
	}
	if out.Int() != 1+4+9+16 {
		t.Errorf("sum = %v, want 30", out)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	d := newTypedTestDeployment(t)
	d.Function("real", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) { return in, nil })
	if _, err := d.Invoke("missing", beldi.Null); !errors.Is(err, beldi.ErrUnknownFunction) {
		t.Errorf("Invoke err = %v, want ErrUnknownFunction", err)
	}
	if _, err := d.InvokeApp("missing", "app", beldi.Null); !errors.Is(err, beldi.ErrUnknownFunction) {
		t.Errorf("InvokeApp err = %v, want ErrUnknownFunction", err)
	}
	if _, err := d.InvokeCtx(context.Background(), "missing", beldi.Null); !errors.Is(err, beldi.ErrUnknownFunction) {
		t.Errorf("InvokeCtx err = %v, want ErrUnknownFunction", err)
	}
	if _, err := d.InvokeAppCtx(context.Background(), "missing", "app", beldi.Null); !errors.Is(err, beldi.ErrUnknownFunction) {
		t.Errorf("InvokeAppCtx err = %v, want ErrUnknownFunction", err)
	}
	if _, err := d.Invoke("real", beldi.Str("x")); err != nil {
		t.Errorf("registered function rejected: %v", err)
	}
}

func TestInvokeCtxCancellation(t *testing.T) {
	d := newTypedTestDeployment(t)
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	d.Function("slow", func(e *beldi.Env, in beldi.Value) (beldi.Value, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-block
		return e.Read("kv", "k") // first op after cancel: dies here
	}, "kv")
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := d.InvokeCtx(ctx, "slow", beldi.Null)
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, beldi.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	close(block)
}

func TestCodecArrayRoundTrip(t *testing.T) {
	type fixed struct {
		Sig  [4]int64
		Name string
	}
	in := fixed{Sig: [4]int64{9, 8, 7, 6}, Name: "x"}
	v, err := beldi.ToValue(in)
	if err != nil {
		t.Fatal(err)
	}
	var out fixed
	if err := beldi.FromValue(v, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v want %+v", out, in)
	}
	// Length mismatch is a descriptive error, not a silent truncation.
	var short struct{ Sig [2]int64 }
	if err := beldi.FromValue(v, &short); err == nil {
		t.Error("decoding a 4-list into [2]int64 succeeded")
	}
}
