// Command figures regenerates every table and figure of the paper's
// evaluation (§7, Appendix C) on the simulated substrate and prints the
// series the paper plots.
//
// Usage:
//
//	figures -fig all                 # everything, default parameters
//	figures -fig 13                  # operation latency microbenchmark
//	figures -fig 14 -duration 5s     # movie review latency vs throughput
//	figures -fig 15                  # travel reservation (with transactions)
//	figures -fig 16 -minutes 60      # GC timeout sweep
//	figures -fig 25                  # Fig 13 with a 5-row DAAL (Appendix C)
//	figures -fig 26                  # social media site (Appendix C)
//	figures -fig costs               # §7.3 storage / IO accounting
//	figures -fig 15b                 # §7.4 Beldi-without-transactions ablation
//	figures -fig ablation            # §4.1 DAAL traversal strategy ablation
//	figures -fig queue               # event-queue throughput vs mapper batch size
//	figures -fig orders              # event-driven order pipeline under load
//	figures -fig shard               # store shard-count scaling, group commit on/off
//	figures -fig fanout              # durable-promise fan-out/fan-in scaling
//	figures -fig backend             # storage backends: memory vs durable WAL, fsync batching
//	figures -fig latency             # request p50/p99 per backend and worker count (§7.2 tails) + push-vs-poll trigger latency
//	figures -fig cluster             # multi-worker scaling, with and without a mid-run worker kill
//	figures -fig remote              # wire-protocol storage plane vs in-process, at simulated RTTs
//	figures -fig pipeline            # speculation + pipelined commit: steps/s vs pipeline depth
//
// With -json, every sweep-shaped figure additionally writes its series as
// machine-readable BENCH_<fig>.json into -out (default "."), so CI can
// archive the bench trajectory across commits.
//
// Numbers are simulator-relative; the shapes (ratios, knees, growth trends)
// are the reproduction targets. See EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/beldi"
	"repro/internal/bench"
)

// jsonDir is the -out directory when -json is set; "" disables emission.
var jsonDir string

// emitJSON writes series as BENCH_<name>.json when -json is on.
func emitJSON(name string, series any) error {
	if jsonDir == "" {
		return nil
	}
	b, err := json.MarshalIndent(series, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(jsonDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(jsonDir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "figures: wrote %s\n", path)
	return nil
}

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 13, 14, 15, 15b, 16, 25, 26, costs, ablation, queue, orders, shard, fanout, backend, latency, cluster, remote, pipeline, all")
		scale    = flag.Float64("scale", 0.1, "latency compression factor (1.0 = DynamoDB-like milliseconds)")
		duration = flag.Duration("duration", 3*time.Second, "measurement duration per sweep point")
		minutes  = flag.Int("minutes", 30, "simulated minutes for fig 16")
		minute   = flag.Duration("minute", 300*time.Millisecond, "real time per simulated minute in fig 16")
		rates    = flag.String("rates", "", "comma-separated offered rates for sweeps (default 100..800)")
		seed     = flag.Int64("seed", 1, "random seed")
		ops      = flag.Int("ops", 60, "operations per fig 13/25 cell")
		jsonOut  = flag.Bool("json", false, "also write each sweep as BENCH_<fig>.json (see -out)")
		outDir   = flag.String("out", ".", "directory for -json output files")
	)
	flag.Parse()
	if *jsonOut {
		jsonDir = *outDir
	}

	rateList := parseRates(*rates)
	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "figures: fig %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("13", func() error { return runFig13(20, *scale, *seed, *ops, "13") })
	run("14", func() error { return runSweep("14", "media", rateList, *duration, *scale, *seed) })
	run("15", func() error { return runSweep("15", "travel", rateList, *duration, *scale, *seed) })
	run("15b", func() error { return runNoTxnSweep(rateList, *duration, *scale, *seed) })
	run("16", func() error { return runFig16(*minutes, *minute, *scale, *seed) })
	run("25", func() error { return runFig13(5, *scale, *seed, *ops, "25") })
	run("26", func() error { return runSweep("26", "social", rateList, *duration, *scale, *seed) })
	run("costs", runCosts)
	run("ablation", func() error { return runAblation(*scale, *seed) })
	run("queue", func() error { return runQueueSweep(*scale, *seed) })
	run("orders", func() error { return runSweep("orders", "orders", rateList, *duration, *scale, *seed) })
	run("shard", func() error { return runShardSweep(*duration, *scale, *seed) })
	run("fanout", func() error { return runFanoutSweep(*duration, *scale, *seed) })
	run("backend", func() error { return runBackendSweep(*duration, *seed) })
	run("latency", func() error { return runLatencySweep(*duration, *seed) })
	run("cluster", func() error { return runClusterSweep(*duration, *scale, *seed) })
	run("remote", func() error { return runRemoteSweep(*duration, *seed) })
	run("pipeline", func() error { return runPipelineSweep(*duration, *scale, *seed) })
}

// runPipelineSweep prints committed steps/s and per-invocation latency
// versus commit-pipeline depth on each substrate — the Netherite speculation
// figure transplanted onto Beldi (see EXPERIMENTS.md, "Speculation & commit
// pipelining"). Depth 1 is the synchronous baseline; deeper cells overlap
// workflow progress with group-committed durability and fence each reply on
// the watermark. -scale compresses the memory substrate's cloud latency;
// the wal and remote cells are disk- and wire-bound.
func runPipelineSweep(duration time.Duration, scale float64, seed int64) error {
	fmt.Println("# Pipeline sweep — committed steps/s vs pipeline depth (depth 1 = synchronous)")
	fmt.Printf("%-10s %-8s %14s %10s %10s %10s %10s %12s %12s\n",
		"backend", "depth", "tput(steps/s)", "invokes", "p50(ms)", "p99(ms)", "flushes", "mean batch", "flush ms")
	pts, err := bench.PipelineSweep(bench.PipelineSweepOptions{
		Backends: []bench.PipelineBackend{bench.PipelineMemory, bench.PipelineWAL, bench.PipelineRemote},
		Duration: duration,
		Scale:    scale,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("%-10s %-8d %14.1f %10d %10.2f %10.2f %10d %12.1f %12.1f\n",
			p.Backend, p.Depth, p.Throughput, p.Invokes, ms(p.P50), ms(p.P99),
			p.Flushes, p.MeanBatch, ms(p.ModeledFlushTime))
	}
	fmt.Println()
	return emitJSON("pipeline", pts)
}

// runRemoteSweep prints committed steps/s and request p50/p99 for the same
// closed-loop workload on an in-process walstore versus the same walstore
// behind the internal/remote wire protocol, at several simulated RTTs — the
// framing/pipelining overhead at zero delay, and how per-step round trips
// compound with distance (the paper's DynamoDB regime). Disk- and
// network-bound, so -scale does not apply.
func runRemoteSweep(duration time.Duration, seed int64) error {
	fmt.Println("# Remote sweep — steps/s and latency: in-process walstore vs wire protocol at simulated RTTs")
	fmt.Printf("%-10s %-10s %14s %10s %10s %10s %10s %10s\n",
		"store", "rtt", "tput(steps/s)", "steps", "p50(ms)", "p99(ms)", "rpcs", "rpc p99")
	pts, err := bench.RemoteSweep(bench.RemoteSweepOptions{
		Duration: duration,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	for _, p := range pts {
		kind, rtt, rpcs, rpcP99 := "inproc", "-", "-", "-"
		if p.Remote {
			kind = "remote"
			rtt = p.RTT.String()
			rpcs = fmt.Sprintf("%d", p.RPCs)
			rpcP99 = fmt.Sprintf("%.3f", ms(p.RPCP99))
		}
		fmt.Printf("%-10s %-10s %14.1f %10d %10.2f %10.2f %10s %10s\n",
			kind, rtt, p.Throughput, p.Steps, ms(p.P50), ms(p.P99), rpcs, rpcP99)
	}
	fmt.Println()
	return emitJSON("remote", pts)
}

// runClusterSweep prints committed workflow steps per second versus worker
// count over one shared store, with and without a worker killed at half the
// window — horizontal scaling and the cost of a mid-run death, with
// exactly-once recovery verified before a kill cell reports (the Netherite
// worker-scaling comparison; see EXPERIMENTS.md). -scale compresses the
// simulated store latency that makes the workload latency-bound.
func runClusterSweep(duration time.Duration, scale float64, seed int64) error {
	fmt.Println("# Cluster sweep — committed steps/s vs worker count, with and without a mid-run kill")
	fmt.Printf("%-8s %-8s %14s %10s %8s %8s %10s\n", "workers", "kill", "tput(steps/s)", "steps", "failed", "stolen", "recovered")
	pts, err := bench.ClusterSweep(bench.ClusterSweepOptions{
		Duration: duration,
		Scale:    scale,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	for _, p := range pts {
		killed := "no"
		if p.Killed {
			killed = "mid-run"
		}
		fmt.Printf("%-8d %-8s %14.1f %10d %8d %8d %10d\n",
			p.Workers, killed, p.Throughput, p.Steps, p.Failed, p.Stolen, p.Recovered)
	}
	fmt.Println()
	return emitJSON("cluster", pts)
}

// runLatencySweep prints client-observed p50/p99 request latency per
// backend and worker count — the wrk2-shaped tail figures of §7.2 — next to
// the step-commit and fsync distributions telemetry measures underneath
// them. See EXPERIMENTS.md, "Tail latency".
func runLatencySweep(duration time.Duration, seed int64) error {
	fmt.Println("# Latency sweep — request p50/p99 vs backend and worker count (telemetry histograms)")
	fmt.Printf("%-14s %-8s %12s %10s %10s %10s %10s %10s %11s %11s\n",
		"backend", "workers", "tput(req/s)", "p50(ms)", "p90(ms)", "p99(ms)", "step p50", "step p99", "fsync p50", "fsync p99")
	pts, err := bench.LatencySweep(bench.LatencySweepOptions{
		Duration: duration,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	for _, p := range pts {
		fmt.Printf("%-14s %-8d %12.1f %10.3f %10.3f %10.3f %10.3f %10.3f %11.3f %11.3f\n",
			p.Backend, p.Workers, p.Throughput, ms(p.P50), ms(p.P90), ms(p.P99),
			ms(p.StepP50), ms(p.StepP99), ms(p.FsyncP50), ms(p.FsyncP99))
	}
	fmt.Println()

	fmt.Println("# Trigger latency — enqueue→receive on an idle queue, push vs poll")
	fmt.Printf("%-14s %-6s %10s %10s %10s %10s %10s %9s\n",
		"backend", "mode", "interval", "p50(ms)", "p90(ms)", "p99(ms)", "max(ms)", "wakeups")
	tpts, err := bench.TriggerLatencySweep(bench.TriggerLatencySweepOptions{Seed: seed})
	if err != nil {
		return err
	}
	for _, p := range tpts {
		fmt.Printf("%-14s %-6s %10s %10.3f %10.3f %10.3f %10.3f %9d\n",
			p.Backend, p.Mode, p.PollInterval, ms(p.P50), ms(p.P90), ms(p.P99), ms(p.Max), p.Wakeups)
	}
	fmt.Println()
	return emitJSON("latency", map[string]any{"request": pts, "trigger": tpts})
}

// runBackendSweep prints committed logged-step throughput for the same
// closed-loop workload on the in-memory backend versus the durable
// WAL-backed store, with fsync group-commit batching on and off — the
// price of real durability and what batching buys back. Disk-bound, so
// -scale does not apply.
func runBackendSweep(duration time.Duration, seed int64) error {
	fmt.Println("# Backend sweep — committed steps/s: memory vs WAL, fsync batching on/off")
	fmt.Printf("%-14s %14s %10s %10s %12s %12s\n", "backend", "tput(steps/s)", "steps", "fsyncs", "mean batch", "wal KiB")
	pts, err := bench.BackendSweep(bench.BackendSweepOptions{
		Duration: duration,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("%-14s %14.1f %10d %10d %12.1f %12.1f\n",
			p.Backend, p.Throughput, p.Steps, p.Fsyncs, p.MeanBatch, float64(p.WALBytes)/1024)
	}
	fmt.Println()
	return emitJSON("backend", pts)
}

// runFanoutSweep prints committed promise results per second versus fan-out
// width for the durable path and the in-memory baseline — the price of
// crash-safe fan-out/fan-in.
func runFanoutSweep(duration time.Duration, scale float64, seed int64) error {
	fmt.Println("# Fan-out — durable-promise results/s vs fan-out width, fixed driver population")
	fmt.Printf("%-8s %-10s %14s %12s %10s %10s %10s\n", "width", "mode", "tput(res/s)", "fanins/s", "rounds", "p50(ms)", "p99(ms)")
	pts, err := bench.FanoutSweep(bench.FanoutSweepOptions{
		Duration: duration,
		Scale:    scale,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("%-8d %-10s %14.1f %12.1f %10d %10.2f %10.2f\n",
			p.Width, p.Mode, p.Throughput, p.FanInsPerSec, p.FanIns, ms(p.P50), ms(p.P99))
	}
	fmt.Println()
	return emitJSON("fanout", pts)
}

// runShardSweep prints committed logged-step throughput versus the store's
// shard count at a fixed offered load, with the group-commit path off and
// on (the Netherite-style partition-scaling experiment; see EXPERIMENTS.md).
// The global -duration flag is the window per (shards, commit) cell and
// -scale compresses the per-op cloud latency; the flush cost that dominates
// this figure is fixed, so the shapes survive both knobs.
func runShardSweep(duration time.Duration, scale float64, seed int64) error {
	fmt.Println("# Shard sweep — committed steps/s vs store shard count, fixed offered load")
	fmt.Printf("%-8s %-10s %14s %10s %12s %10s\n", "shards", "commit", "tput(steps/s)", "steps", "batches", "mean batch")
	pts, err := bench.ShardSweep(bench.ShardSweepOptions{
		Duration: duration,
		Scale:    scale,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	for _, p := range pts {
		commit := "plain"
		if p.Batched {
			commit = "batched"
		}
		fmt.Printf("%-8d %-10s %14.1f %10d %12d %10.1f\n",
			p.Shards, commit, p.Throughput, p.Steps, p.GroupCommits, p.MeanBatch)
	}
	fmt.Println()
	return emitJSON("shard", pts)
}

// runQueueSweep prints the event-queue subsystem's consume throughput versus
// event-source-mapper batch size.
func runQueueSweep(scale float64, seed int64) error {
	fmt.Println("# Queue — durable event-queue consume throughput vs mapper batch size")
	fmt.Printf("%-8s %12s %10s %12s\n", "batch", "tput(msg/s)", "polls", "elapsed(ms)")
	pts, err := bench.QueueSweep(bench.QueueSweepOptions{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("%-8d %12.1f %10d %12.2f\n", p.Batch, p.Throughput, p.Polls, ms(p.Elapsed))
	}
	fmt.Println()
	return emitJSON("queue", pts)
}

// runNoTxnSweep is the §7.4 ablation: the travel site with Beldi's fault
// tolerance but without the reservation transaction (the paper measures a
// 16% lower median and 20% lower p99 at saturation).
func runNoTxnSweep(rates []float64, duration time.Duration, scale float64, seed int64) error {
	fmt.Println("# §7.4 ablation — travel app on Beldi without transactions")
	fmt.Printf("%-14s %8s %10s %10s %10s %8s\n", "config", "offered", "tput", "p50", "p99", "errors")
	for _, app := range []string{"travel", "travel-notxn"} {
		pts, err := bench.Sweep(bench.SweepOptions{
			App: app, Mode: beldi.ModeBeldi, Rates: rates,
			Duration: duration, Scale: scale, Seed: seed,
		})
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Printf("%-14s %8.0f %10.1f %10.2f %10.2f %8d\n",
				app, p.Rate, p.Throughput, ms(p.P50), ms(p.P99), p.Errors+p.Dropped)
		}
	}
	fmt.Println()
	return nil
}

func runAblation(scale float64, seed int64) error {
	fmt.Println("# Ablation — DAAL tail traversal: scan+projection vs pointer chasing (§4.1)")
	fmt.Printf("%-8s %-15s %12s %12s\n", "depth", "strategy", "median(ms)", "store ops")
	rows, err := bench.TraversalAblation(bench.AblationOptions{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-8d %-15s %12.2f %12.1f\n", r.Depth, r.Strategy, ms(r.Median), r.StoreOps)
	}
	fmt.Println()
	return nil
}

func parseRates(s string) []float64 {
	if s == "" {
		return nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: bad rate %q: %v\n", part, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func runFig13(rows int, scale float64, seed int64, ops int, label string) error {
	fmt.Printf("# Figure %s — operation latency (ms), %d-row linked DAAL, 1B keys / 16B values\n", label, rows)
	fmt.Printf("%-10s %-24s %10s %10s\n", "op", "mode", "median", "p99")
	res, err := bench.Fig13(bench.Fig13Options{
		DAALRows: rows, Scale: scale, Seed: seed, Ops: ops,
	})
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("%-10s %-24s %10.2f %10.2f\n", r.Op, bench.ModeLabel(r.Mode), ms(r.Median), ms(r.P99))
	}
	fmt.Println()
	return nil
}

func runSweep(label, app string, rates []float64, duration time.Duration, scale float64, seed int64) error {
	fmt.Printf("# Figure %s — %s app: response time (ms) vs throughput (req/s)\n", label, app)
	fmt.Printf("%-10s %8s %10s %10s %10s %8s\n", "mode", "offered", "tput", "p50", "p99", "errors")
	type modeSeries struct {
		Mode   string
		Points []bench.SweepPoint
	}
	var series []modeSeries
	for _, mode := range []beldi.Mode{beldi.ModeBaseline, beldi.ModeBeldi} {
		pts, err := bench.Sweep(bench.SweepOptions{
			App: app, Mode: mode, Rates: rates,
			Duration: duration, Scale: scale, Seed: seed,
		})
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Printf("%-10s %8.0f %10.1f %10.2f %10.2f %8d\n",
				bench.ModeLabel(mode), p.Rate, p.Throughput, ms(p.P50), ms(p.P99), p.Errors+p.Dropped)
		}
		series = append(series, modeSeries{Mode: bench.ModeLabel(mode), Points: pts})
	}
	fmt.Println()
	return emitJSON(label, series)
}

func runFig16(minutes int, minuteDur time.Duration, scale float64, seed int64) error {
	fmt.Printf("# Figure 16 — single-write SSF median latency (ms) over %d simulated minutes\n", minutes)
	series, err := bench.Fig16(bench.Fig16Options{
		Minutes: minutes, MinuteDuration: minuteDur, Scale: scale, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s", "minute")
	for _, s := range series {
		fmt.Printf(" %18s", s.Label)
	}
	fmt.Println()
	for m := 0; m < minutes; m++ {
		fmt.Printf("%-8d", m+1)
		for _, s := range series {
			fmt.Printf(" %18.2f", ms(s.Median[m]))
		}
		fmt.Println()
	}
	fmt.Printf("%-8s", "rows@end")
	for _, s := range series {
		fmt.Printf(" %18d", s.Rows[len(s.Rows)-1])
	}
	fmt.Println()
	fmt.Printf("%-8s", "bytes@end")
	for _, s := range series {
		fmt.Printf(" %18d", s.Bytes[len(s.Bytes)-1])
	}
	fmt.Println()
	fmt.Println()
	return nil
}

func runCosts() error {
	rep, err := bench.Costs(0)
	if err != nil {
		return err
	}
	fmt.Println("# §7.3 'Other costs' — storage and IO accounting")
	fmt.Printf("stored bytes per op beyond the value:  beldi=%.1f  baseline=%.1f\n",
		rep.StoredBytesPerOpBeldi, rep.StoredBytesPerOpBaseline)
	fmt.Printf("response bytes per read (20-row DAAL): beldi=%d  baseline=%d  (extra=%d)\n",
		rep.ReadBytesBeldi, rep.ReadBytesBaseline, rep.ReadBytesBeldi-rep.ReadBytesBaseline)
	fmt.Printf("store round trips per read:            beldi=%.1f  baseline=%.1f\n",
		rep.StoreOpsPerReadBeldi, rep.StoreOpsPerReadBaseline)
	fmt.Printf("store round trips per write:           beldi=%.1f  baseline=%.1f\n",
		rep.StoreOpsPerWriteBeldi, rep.StoreOpsPerWriteBaseline)
	fmt.Printf("store round trips per invoke:          beldi=%.1f  baseline=%.1f\n",
		rep.StoreOpsPerInvokeBeldi, rep.StoreOpsPerInvokeBaseline)
	fmt.Printf("20-row DAAL footprint:                 %d bytes\n", rep.DAALBytes20Rows)
	fmt.Println()
	return nil
}
