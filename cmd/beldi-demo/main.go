// Command beldi-demo runs one of the case-study workflows interactively,
// with optional fault injection — a workbench for watching Beldi's recovery
// machinery operate.
//
// Usage:
//
//	beldi-demo -app travel -requests 40                  # drive the app
//	beldi-demo -app media -crash media-frontend -at 5    # kill an instance at its 5th op
//	beldi-demo -app social -mode baseline -requests 40   # no guarantees
//
// With -crash, the named function's first instance dies at its -at'th
// operation boundary; the demo then drives the intent collectors until the
// workflow completes and reports what happened.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/beldi"
	"repro/internal/bench"
	"repro/internal/dynamo"
	"repro/internal/platform"
)

func main() {
	var (
		app      = flag.String("app", "travel", "application: media, travel, social")
		modeName = flag.String("mode", "beldi", "mode: beldi, crosstable, baseline")
		requests = flag.Int("requests", 20, "number of requests to drive")
		crashFn  = flag.String("crash", "", "function to kill once (platform fault injection)")
		crashAt  = flag.Int("at", 3, "operation index to kill at")
		seed     = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	var mode beldi.Mode
	switch *modeName {
	case "beldi":
		mode = beldi.ModeBeldi
	case "crosstable":
		mode = beldi.ModeCrossTable
	case "baseline":
		mode = beldi.ModeBaseline
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	sys := bench.NewSystem(bench.SystemOptions{
		Mode: mode, Scale: 0.05, Seed: *seed, Concurrency: 10000,
		Config: beldi.Config{T: 300 * time.Millisecond, ICMinAge: 10 * time.Millisecond},
	})
	workApp, err := bench.BuildApp(sys, *app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Arm the fault plan only after seeding so the kill lands on workload
	// traffic.
	var plan *platform.CrashNthOp
	if *crashFn != "" {
		plan = &platform.CrashNthOp{Function: *crashFn, N: *crashAt}
		sys.Plat.SetFaults(plan)
	}

	fmt.Printf("driving %d %s requests in %s mode...\n", *requests, *app, mode)
	rng := rand.New(rand.NewSource(*seed))
	var ok, failed int
	start := time.Now()
	for i := 0; i < *requests; i++ {
		if _, err := sys.D.Invoke(workApp.Entry(), workApp.Request(rng)); err != nil {
			failed++
			fmt.Printf("  request %d failed: %v\n", i, err)
		} else {
			ok++
		}
	}
	fmt.Printf("%d ok, %d failed in %s\n", ok, failed, time.Since(start).Round(time.Millisecond))

	if plan != nil {
		if !plan.Fired() {
			fmt.Printf("note: %s never reached op %d; no crash was injected\n", *crashFn, *crashAt)
		} else if mode == beldi.ModeBaseline {
			fmt.Println("crash injected; baseline has no recovery — state may be corrupt")
		} else {
			fmt.Println("crash injected; driving intent collectors to recover ...")
			deadline := time.Now().Add(10 * time.Second)
			for {
				time.Sleep(50 * time.Millisecond)
				if err := sys.D.RunAllCollectors(); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				pending := pendingIntents(sys)
				fmt.Printf("  pending intents: %d\n", pending)
				if pending == 0 {
					fmt.Println("recovered: every intent completed exactly once")
					break
				}
				if time.Now().After(deadline) {
					fmt.Println("gave up waiting for recovery")
					os.Exit(1)
				}
			}
		}
	}

	m := sys.Plat.Metrics()
	fmt.Printf("\nplatform: %d invocations, %d crashes, %d timeouts, peak concurrency %d\n",
		m.Invocations.Load(), m.Crashes.Load(), m.Timeouts.Load(), m.ConcurrencyHighWater.Load())
	s := sys.Store.Metrics().Snapshot()
	fmt.Printf("store: %d ops (%d conditional failures), %.1f KB read, %.1f KB written\n",
		s.TotalOps(), s.CondFailures, float64(s.BytesRead)/1024, float64(s.BytesWritten)/1024)
}

// pendingIntents counts unfinished intents across all functions.
func pendingIntents(sys *bench.System) int {
	total := 0
	for _, name := range sys.Store.TableNames() {
		if len(name) < 7 || name[len(name)-7:] != ".intent" {
			continue
		}
		items, err := sys.Store.Scan(name, dynamo.QueryOpts{
			Filter: dynamo.Eq(dynamo.A("Done"), dynamo.Bool(false)),
		})
		if err != nil {
			continue
		}
		total += len(items)
	}
	return total
}
