// Command beldi-demo runs one of the case-study workflows interactively,
// with optional fault injection — a workbench for watching Beldi's recovery
// machinery operate.
//
// Usage:
//
//	beldi-demo -app travel -requests 40                  # drive the app
//	beldi-demo -app media -crash media-frontend -at 5    # kill an instance at its 5th op
//	beldi-demo -app social -mode baseline -requests 40   # no guarantees
//
// With -crash, the named function's first instance dies at its -at'th
// operation boundary; the demo then drives the intent collectors until the
// workflow completes and reports what happened.
//
// With -worker, the process instead becomes one compute-plane member of a
// multi-process pool: it dials a beldi-storaged server (-store), joins the
// named cluster with the shared counter demo app, and serves until
// signaled (or killed — recovery of whatever it was running is the
// surviving pool's job):
//
//	beldi-demo -worker -store 127.0.0.1:7440 -id w1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/beldi"
	"repro/internal/apps/counterdemo"
	"repro/internal/bench"
	"repro/internal/dynamo"
	"repro/internal/platform"
	"repro/internal/remote"
)

func main() {
	var (
		app      = flag.String("app", "travel", "application: media, travel, social")
		modeName = flag.String("mode", "beldi", "mode: beldi, crosstable, baseline")
		requests = flag.Int("requests", 20, "number of requests to drive")
		crashFn  = flag.String("crash", "", "function to kill once (platform fault injection)")
		crashAt  = flag.Int("at", 3, "operation index to kill at")
		seed     = flag.Int64("seed", 1, "workload seed")

		worker      = flag.Bool("worker", false, "run as a cluster worker against a remote store instead of driving an app")
		storeAddr   = flag.String("store", "127.0.0.1:7440", "beldi-storaged address (with -worker)")
		clusterName = flag.String("cluster", "main", "cluster pool name (with -worker)")
		workerID    = flag.String("id", "", "worker id; empty auto-generates (with -worker)")
		leaseTTL    = flag.Duration("lease", time.Second, "worker lease TTL (with -worker)")
	)
	flag.Parse()

	if *worker {
		if err := runWorker(*storeAddr, *clusterName, *workerID, *leaseTTL); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var mode beldi.Mode
	switch *modeName {
	case "beldi":
		mode = beldi.ModeBeldi
	case "crosstable":
		mode = beldi.ModeCrossTable
	case "baseline":
		mode = beldi.ModeBaseline
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	sys := bench.NewSystem(bench.SystemOptions{
		Mode: mode, Scale: 0.05, Seed: *seed, Concurrency: 10000,
		Config: beldi.Config{T: 300 * time.Millisecond, ICMinAge: 10 * time.Millisecond},
	})
	workApp, err := bench.BuildApp(sys, *app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Arm the fault plan only after seeding so the kill lands on workload
	// traffic.
	var plan *platform.CrashNthOp
	if *crashFn != "" {
		plan = &platform.CrashNthOp{Function: *crashFn, N: *crashAt}
		sys.Plat.SetFaults(plan)
	}

	fmt.Printf("driving %d %s requests in %s mode...\n", *requests, *app, mode)
	rng := rand.New(rand.NewSource(*seed))
	var ok, failed int
	start := time.Now()
	for i := 0; i < *requests; i++ {
		if _, err := sys.D.Invoke(workApp.Entry(), workApp.Request(rng)); err != nil {
			failed++
			fmt.Printf("  request %d failed: %v\n", i, err)
		} else {
			ok++
		}
	}
	fmt.Printf("%d ok, %d failed in %s\n", ok, failed, time.Since(start).Round(time.Millisecond))

	if plan != nil {
		if !plan.Fired() {
			fmt.Printf("note: %s never reached op %d; no crash was injected\n", *crashFn, *crashAt)
		} else if mode == beldi.ModeBaseline {
			fmt.Println("crash injected; baseline has no recovery — state may be corrupt")
		} else {
			fmt.Println("crash injected; driving intent collectors to recover ...")
			deadline := time.Now().Add(10 * time.Second)
			for {
				time.Sleep(50 * time.Millisecond)
				if err := sys.D.RunAllCollectors(); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				pending := pendingIntents(sys)
				fmt.Printf("  pending intents: %d\n", pending)
				if pending == 0 {
					fmt.Println("recovered: every intent completed exactly once")
					break
				}
				if time.Now().After(deadline) {
					fmt.Println("gave up waiting for recovery")
					os.Exit(1)
				}
			}
		}
	}

	m := sys.Plat.Metrics()
	fmt.Printf("\nplatform: %d invocations, %d crashes, %d timeouts, peak concurrency %d\n",
		m.Invocations.Load(), m.Crashes.Load(), m.Timeouts.Load(), m.ConcurrencyHighWater.Load())
	s := sys.Store.Metrics().Snapshot()
	fmt.Printf("store: %d ops (%d conditional failures), %.1f KB read, %.1f KB written\n",
		s.TotalOps(), s.CondFailures, float64(s.BytesRead)/1024, float64(s.BytesWritten)/1024)
}

// runWorker is the -worker mode: one compute-plane process of a
// multi-process pool, all coordination through the remote storage plane.
// It joins the cluster, starts the background loops (lease heartbeats,
// failure detection, scoped collection, owned-queue draining), prints
// "READY <id>" for orchestrating parents, and serves until SIGINT/SIGTERM
// (graceful leave) or SIGKILL (the failure the pool recovers from).
func runWorker(storeAddr, clusterName, id string, leaseTTL time.Duration) error {
	client, err := remote.Dial(storeAddr, remote.Options{})
	if err != nil {
		return fmt.Errorf("beldi-demo: dial storaged: %w", err)
	}
	defer client.Close()
	c, err := beldi.OpenCluster(beldi.ClusterOptions{
		Name:         clusterName,
		Store:        client,
		LeaseTTL:     leaseTTL,
		Config:       beldi.Config{T: 300 * time.Millisecond, ICMinAge: 10 * time.Millisecond},
		DurableAsync: &beldi.DurableAsyncOptions{VisibilityTimeout: time.Second, PollInterval: 20 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	w, err := c.JoinCluster(id, counterdemo.Register)
	if err != nil {
		return fmt.Errorf("beldi-demo: join cluster: %w", err)
	}
	w.Start()
	fmt.Printf("READY %s\n", w.Worker().ID())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	return w.Leave()
}

// pendingIntents counts unfinished intents across all functions.
func pendingIntents(sys *bench.System) int {
	total := 0
	for _, name := range sys.Store.TableNames() {
		if len(name) < 7 || name[len(name)-7:] != ".intent" {
			continue
		}
		items, err := sys.Store.Scan(name, dynamo.QueryOpts{
			Filter: dynamo.Eq(dynamo.A("Done"), dynamo.Bool(false)),
		})
		if err != nil {
			continue
		}
		total += len(items)
	}
	return total
}
