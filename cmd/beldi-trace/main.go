// Command beldi-trace renders the causal trace of a Beldi workflow — every
// execution attempt, logged step, call edge and queue hop of an intent tree,
// with replayed operations and crashed attempts marked — from either a live
// deployment's telemetry endpoint or the durable state in a WAL directory.
//
// Usage:
//
//	beldi-trace -addr 127.0.0.1:6060             # list roots on a live deployment
//	beldi-trace -addr 127.0.0.1:6060 -root ID    # render one trace
//	beldi-trace -addr 127.0.0.1:6060 -all        # render every trace
//	beldi-trace -wal ./data                      # list roots from durable state
//	beldi-trace -wal ./data -root ID             # render one trace from durable state
//	beldi-trace -wal ./data -all                 # render every trace
//
// Live traces come from the in-process tracer (telemetry.Serve's /traces and
// /trace endpoints) and carry full step detail. Durable traces are
// reconstructed from the intent and invoke-log tables a crashed deployment
// left behind, so they show the workflow's call tree and completion state —
// what an operator needs to answer "which workflows were in flight, and how
// far did they get?" after an outage — without needing the process that died.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"

	"repro/internal/telemetry"
	"repro/internal/walstore"
)

func main() {
	var (
		addr = flag.String("addr", "", "telemetry endpoint of a live deployment (host:port)")
		wal  = flag.String("wal", "", "WAL directory of a (possibly crashed) durable deployment")
		root = flag.String("root", "", "root intent id to render; empty lists roots")
		all  = flag.Bool("all", false, "render every trace instead of listing roots")
	)
	flag.Parse()
	if (*addr == "") == (*wal == "") {
		fmt.Fprintln(os.Stderr, "beldi-trace: exactly one of -addr or -wal is required")
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if *addr != "" {
		err = fromLive(*addr, *root, *all)
	} else {
		err = fromWAL(*wal, *root, *all)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "beldi-trace:", err)
		os.Exit(1)
	}
}

// fromLive proxies the deployment's own endpoint: the tracer lives in the
// serving process, so rendering happens there and we just print it.
func fromLive(addr string, root string, all bool) error {
	if root != "" {
		return fetch("http://"+addr+"/trace?format=text&root="+url.QueryEscape(root), os.Stdout)
	}
	if !all {
		fmt.Println("roots (pass -root ID or -all to render):")
		return fetch("http://"+addr+"/traces", os.Stdout)
	}
	var buf bytes.Buffer
	if err := fetch("http://"+addr+"/traces", &buf); err != nil {
		return err
	}
	var roots []string
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &roots); err != nil {
		return fmt.Errorf("parsing /traces: %w", err)
	}
	sort.Strings(roots)
	for _, r := range roots {
		if err := fetch("http://"+addr+"/trace?format=text&root="+url.QueryEscape(r), os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func fetch(url string, w io.Writer) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	_, err = io.Copy(w, resp.Body)
	fmt.Fprintln(w)
	return err
}

// fromWAL recovers the store from dir (read path only; nothing is appended)
// and reconstructs traces from the intent and invoke-log tables.
func fromWAL(dir, root string, all bool) error {
	st, err := walstore.Open(dir, walstore.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	spans, err := telemetry.DurableSpans(st)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		fmt.Println("no intents recorded")
		return nil
	}
	roots := telemetry.Roots(spans)
	if root != "" {
		roots = []string{root}
	} else if !all {
		fmt.Printf("%d roots (pass -root ID or -all to render):\n", len(roots))
		sort.Strings(roots)
		for _, r := range roots {
			fmt.Println(" ", r)
		}
		return nil
	}
	for _, r := range roots {
		tr := telemetry.Assemble(spans, r)
		if len(tr.Spans) == 0 {
			return fmt.Errorf("no spans for root %s", r)
		}
		tr.Render(os.Stdout)
		fmt.Println()
	}
	return nil
}
