// Command beldi-storaged is the storage plane as a process: a durable
// walstore served over the internal/remote wire protocol, so any number of
// worker processes (cmd/beldi-demo -worker, examples/cluster) share one
// independently-failing store — the deployment split the paper assumes
// between Lambda workers and DynamoDB.
//
// Usage:
//
//	beldi-storaged -dir /var/lib/beldi -listen 127.0.0.1:7440
//	beldi-storaged -dir ./data -sync each        # fsync per record
//	beldi-storaged -dir ./data -metrics :7441    # telemetry over HTTP
//
// The bound address is printed as "LISTEN <addr>" on stdout once the server
// accepts connections (useful with -listen 127.0.0.1:0). SIGINT/SIGTERM
// shut down cleanly: stop accepting, hang up, flush and close the store.
// SIGKILL is survivable too — that is the point of the WAL — but loses
// nothing more than unacknowledged requests.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/remote"
	"repro/internal/telemetry"
	"repro/internal/walstore"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7440", "TCP address to serve the wire protocol on")
		dir     = flag.String("dir", "", "walstore data directory (required)")
		sync    = flag.String("sync", "batched", "fsync policy: batched, each, none")
		metrics = flag.String("metrics", "", "optional HTTP address for telemetry snapshots")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "beldi-storaged: -dir is required")
		os.Exit(2)
	}
	var policy walstore.SyncPolicy
	switch *sync {
	case "batched":
		policy = walstore.SyncBatched
	case "each":
		policy = walstore.SyncEach
	case "none":
		policy = walstore.SyncNone
	default:
		fmt.Fprintf(os.Stderr, "beldi-storaged: unknown -sync %q (want batched, each, none)\n", *sync)
		os.Exit(2)
	}

	store, err := walstore.Open(*dir, walstore.Options{Sync: policy})
	if err != nil {
		log.Fatalf("beldi-storaged: open %s: %v", *dir, err)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("beldi-storaged: listen %s: %v", *listen, err)
	}
	srv := remote.NewServer(store, remote.ServeOptions{Logf: log.Printf})

	if *metrics != "" {
		hub := telemetry.New()
		m := store.Metrics()
		hub.Registry.Register("store", func() any { return m.Snapshot() })
		wal := store.WAL()
		hub.Registry.Register("wal", func() any { return wal.Snapshot() })
		stats := srv.Stats()
		hub.Registry.Register("remote.server", func() any { return stats.Snapshot() })
		if _, err := telemetry.Serve(*metrics, hub); err != nil {
			log.Fatalf("beldi-storaged: metrics listener: %v", err)
		}
		log.Printf("beldi-storaged: telemetry on http://%s", *metrics)
	}

	// Announce the bound address (flushes -listen :0 back to the parent).
	fmt.Printf("LISTEN %s\n", lis.Addr())
	log.Printf("beldi-storaged: serving %s (sync=%s) on %s", *dir, policy, lis.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	select {
	case s := <-sig:
		log.Printf("beldi-storaged: %v, shutting down", s)
	case err := <-done:
		if err != nil {
			log.Printf("beldi-storaged: serve: %v", err)
		}
	}
	srv.Close()
	if err := store.Close(); err != nil {
		log.Fatalf("beldi-storaged: close store: %v", err)
	}
}
