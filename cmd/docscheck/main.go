// Command docscheck is the CI documentation gate: it fails (exit 1) when an
// exported identifier in the audited packages lacks a godoc comment, or when
// an audited package lacks a package-level doc comment.
//
// Usage:
//
//	docscheck [package-dir ...]
//
// With no arguments it audits the default set: the public beldi API, the
// substrate packages (dynamo, platform, queue), the Beldi core, and the
// utility packages (hist, clock, uuid, workload). Exported types, functions,
// methods, and const/var groups are checked; test files are ignored. A
// const/var group is satisfied by a comment on the group as a whole or on
// the individual name, matching godoc's rendering rules.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultDirs is the audited package set (repo-relative), per the
// documentation-gate policy in CONTRIBUTING-grade docs: every exported
// identifier in these packages is part of a documented surface.
var defaultDirs = []string{
	"beldi",
	"beldi/stepfn",
	"internal/cluster",
	"internal/core",
	"internal/dynamo",
	"internal/storage",
	"internal/storage/storagetest",
	"internal/pipeline",
	"internal/remote",
	"internal/sim",
	"internal/walstore",
	"internal/queue",
	"internal/platform",
	"internal/hist",
	"internal/telemetry",
	"internal/clock",
	"internal/uuid",
	"internal/workload",
	"internal/apps/cron",
	"cmd/beldi-trace",
	"cmd/beldi-storaged",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var problems []string
	for _, dir := range dirs {
		ps, err := auditDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d undocumented exported identifiers\n", len(problems))
		os.Exit(1)
	}
}

// auditDir parses one package directory and reports every undocumented
// exported declaration as "file:line: message".
func auditDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			// Attribute the finding to the package's first file by name for a
			// stable message.
			names := make([]string, 0, len(pkg.Files))
			for n := range pkg.Files {
				names = append(names, n)
			}
			sort.Strings(names)
			problems = append(problems, fmt.Sprintf("%s:1: package %s has no package doc comment", filepath.ToSlash(names[0]), pkg.Name))
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "exported %s %s is undocumented", declKind(d), declName(d))
					}
				case *ast.GenDecl:
					auditGenDecl(d, report)
				}
			}
		}
	}
	return problems, nil
}

// exportedReceiver reports whether a method's receiver type is exported (a
// method on an unexported type is not part of the public surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func declName(d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		return fmt.Sprintf("(%s).%s", typeString(d.Recv.List[0].Type), d.Name.Name)
	}
	return d.Name.Name
}

func typeString(t ast.Expr) string {
	switch v := t.(type) {
	case *ast.StarExpr:
		return "*" + typeString(v.X)
	case *ast.Ident:
		return v.Name
	default:
		return "?"
	}
}

// auditGenDecl checks type, const, and var declarations. For grouped
// const/var blocks a doc comment on the group covers every name in it.
func auditGenDecl(d *ast.GenDecl, report func(pos token.Pos, format string, args ...any)) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if !ts.Name.IsExported() {
				continue
			}
			if d.Doc == nil && ts.Doc == nil {
				report(ts.Pos(), "exported type %s is undocumented", ts.Name.Name)
			}
		}
	case token.CONST, token.VAR:
		groupDocumented := d.Doc != nil
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				if !name.IsExported() {
					continue
				}
				if !groupDocumented && vs.Doc == nil && vs.Comment == nil {
					report(name.Pos(), "exported %s %s is undocumented", d.Tok, name.Name)
				}
			}
		}
	}
}
